// Versioning scheduler — the paper's contribution (§IV).
//
// Keeps TaskVersionSet profiling tables (Table I): per task type and per
// data-set-size group, the mean execution time and run count of every
// version. Two phases per group:
//
//  * Initial learning phase — while some runnable version of the group has
//    fewer than λ recorded runs: versions are picked round-robin and
//    handed to the least-busy compatible worker, with at most λ in-flight
//    learning runs per version so a burst of ready tasks cannot flood a
//    slow implementation before any measurement exists. Surplus ready
//    tasks wait in a central pool; idle workers pull from it, preferring
//    under-sampled versions of their own device kind, then the fastest
//    known one — so the machine stays busy while the table fills in.
//
//  * Reliable information phase — every ready task goes to its *earliest
//    executor*: the worker minimizing (estimated busy time + estimated
//    execution time of the best version runnable on that worker). The
//    fastest executor usually wins, but an idle slower worker that would
//    finish first gets the task (Figure 5).
//
// A worker's estimated busy time is the sum of the *current* mean execution
// times of the tasks in its queue plus the task it is running (§IV-B), so
// estimates sharpen as the table learns. Since the scheduling-core refactor
// this quantity is maintained incrementally by the shared load account
// (src/sched/core/load_account.h): pushes charge, pops move the charge to
// the running slot, completions release it, and a mean movement re-prices
// the queued charges of exactly that profile cell — no queue rescans.
// Placement walks the per-kind finish-time index in increasing busy order
// and prunes once busy + mean cannot beat the best finish. Profiling never
// stops: completion times keep updating the means in both phases, and a
// task arriving with a previously unseen data-set size re-enters the
// learning phase for that new group only.
#pragma once

#include <deque>
#include <map>

#include "sched/profile_table.h"
#include "sched/scheduler.h"

namespace versa {

class VersioningScheduler : public QueueScheduler {
 public:
  explicit VersioningScheduler(ProfileConfig config = {});

  const char* name() const override { return "versioning"; }

  /// Ablation switch: when set, reliable-phase placement ignores worker
  /// busy time and always picks the fastest version's least-queued worker
  /// — i.e. the *fastest executor* instead of the *earliest executor*.
  /// This is exactly the strawman Figure 5 argues against; exposed as the
  /// "versioning-fastest" policy for the ablation benches.
  void set_fastest_executor_only(bool enabled) {
    fastest_executor_only_ = enabled;
  }
  void attach(SchedulerContext& ctx) override;
  void task_ready(Task& task) override;
  TaskId pop_task(WorkerId worker) override;
  void task_completed(Task& task, WorkerId worker, Duration measured) override;
  void task_failed(Task& task, WorkerId worker) override;
  Duration estimated_busy(WorkerId worker) const override;
  bool has_pending() const override;

  const ProfileTable& profile() const;
  ProfileTable& mutable_profile();

  /// Tasks dispatched through the learning phase so far (forced version
  /// sampling). Zero on a fully warm-started run; the warm-start tests and
  /// benches assert on it.
  std::uint64_t learning_executions() const { return learning_executions_; }

  /// Drift alarms raised by the profile table so far (relearn events).
  std::size_t relearn_events() const { return profile().drift_events().size(); }

  /// Debug aid for tests: every estimated_busy() call cross-checks the
  /// incremental account against the O(queue) rescan reference and aborts
  /// on divergence. Off by default (it reintroduces the rescan cost).
  void set_debug_cross_check(bool enabled) { debug_cross_check_ = enabled; }

 protected:
  /// Extension hook: extra cost charged for placing `task` on `worker`
  /// (zero here; the locality-aware subclass adds a transfer estimate).
  virtual Duration placement_penalty(const Task& task, WorkerId worker) const;

  /// True when placement_penalty reads the data directory. The directory
  /// is no longer runtime-lock serialized, so prefetch acquires on worker
  /// threads can move region residency *while* a placement walk is
  /// pricing candidates; assign_earliest_executor then re-validates the
  /// decision against DataDirectory::shard_epoch() over the task's shards (one bounded
  /// retry). Policies whose penalty is directory-free skip the epoch
  /// sampling entirely.
  virtual bool placement_penalty_uses_directory() const { return false; }

  /// All runnable versions (device has >= 1 worker) recorded >= λ times?
  /// Shared with subclasses that replace the reliable-phase mapping rule.
  bool reliable_runnable(TaskTypeId type, std::uint64_t size) const;

  /// Account price keys group by the profile table's size grouping so a
  /// mean movement re-prices exactly the tasks that mean priced.
  std::uint64_t price_group(const Task& task) const override;

  /// The charge for placing `version` of `task` when no mean exists yet:
  /// the group mean, else the task's frozen scheduler_estimate (a failed
  /// task re-entering keeps its last charge), else the version's mean from
  /// the nearest size group — zero only when the version never ran at all.
  Duration estimate_for(const Task& task, VersionId version) const;

 private:
  using GroupKey = std::pair<TaskTypeId, std::uint64_t>;

  ProfileConfig config_;
  bool fastest_executor_only_ = false;
  bool debug_cross_check_ = false;
  std::uint64_t learning_executions_ = 0;
  std::optional<ProfileTable> profile_;  // built at attach (needs registry)

  /// Ready tasks not yet assigned to any worker (learning back-pressure).
  std::deque<TaskId> pool_;

  /// Learning-phase in-flight run count per (group, version).
  std::map<std::pair<GroupKey, VersionId>, std::uint32_t> learning_inflight_;

  /// Round-robin cursor per group for the learning phase.
  std::map<GroupKey, std::size_t> rr_cursor_;

  GroupKey group_of(const Task& task) const;

  /// Try to place `task` (learning slot or earliest executor). Returns
  /// false if it must wait in the pool.
  bool try_place(Task& task);

  /// Place every placeable pooled task, preserving order.
  void drain_pool();

  void assign_earliest_executor(Task& task);

  /// Learning bookkeeping around push_to_worker.
  void push_learning(Task& task, VersionId version, WorkerId worker);

  WorkerId least_busy_worker(const TaskVersion& version) const;

  /// Pool fallback for an idle worker: pick a pooled task + version for
  /// this worker's device kind (under-sampled first, then fastest known).
  TaskId pull_from_pool(WorkerId worker);
};

}  // namespace versa
