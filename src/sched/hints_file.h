// External scheduling hints — the paper's third future-work item (§VII):
// "the scheduler should also offer the possibility to receive external
// hints for task versions: for example, read a file with additional
// information... written by the user, but it could also be written by the
// runtime from a previous application's execution."
//
// Format (line-oriented text, stable across runs because entries are keyed
// by task/version *names*):
//
//   # versa hints v1
//   hint <task_name> <version_name> <group_key> <mean_seconds> <count>
//
// Loading primes the profile table so groups can start in the reliable
// phase, skipping the learning phase entirely.
#pragma once

#include <string>
#include <string_view>

#include "sched/profile_table.h"
#include "task/version_registry.h"

namespace versa {

/// Serialize every profile entry. Counts are clamped to the table's λ at
/// load time anyway, so the exact history length does not matter.
std::string serialize_hints(const VersionRegistry& registry,
                            const ProfileTable& table);

/// Parse hints text into `table`. Unknown task/version names are skipped
/// with a warning (applications evolve; stale hints must not be fatal).
/// Returns the number of entries applied, or -1 on malformed input.
int parse_hints(std::string_view text, const VersionRegistry& registry,
                ProfileTable& table);

/// File wrappers. save_hints returns false if the file cannot be written;
/// load_hints returns -1 if it cannot be read or parsed.
bool save_hints(const std::string& path, const VersionRegistry& registry,
                const ProfileTable& table);
int load_hints(const std::string& path, const VersionRegistry& registry,
               ProfileTable& table);

}  // namespace versa
