#include "sched/versioning_scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace versa {

VersioningScheduler::VersioningScheduler(ProfileConfig config)
    : config_(config) {}

void VersioningScheduler::attach(SchedulerContext& ctx) {
  QueueScheduler::attach(ctx);
  profile_.emplace(ctx.registry(), config_);
  // Every mean movement — new measurement, hint prime, warm-start restore,
  // drift-relearn reset — marks that (type, version, group) key dirty; the
  // actual LoadAccount::reprice is deferred and coalesced per round, so a
  // completion burst issues one reprice per distinct key instead of one
  // per measurement. Every price-reading walk flushes first, so estimates
  // are exactly as current as with the old immediate re-price.
  profile_->set_mean_listener(
      [this](TaskTypeId type, VersionId version, std::uint64_t group,
             std::optional<Duration> mean) {
        defer_reprice(core::PriceKey{type, version, group}, mean);
      });
  learning_executions_ = 0;
  pool_.clear();
  learning_inflight_.clear();
  rr_cursor_.clear();
}

const ProfileTable& VersioningScheduler::profile() const {
  VERSA_CHECK(profile_.has_value());
  return *profile_;
}

ProfileTable& VersioningScheduler::mutable_profile() {
  VERSA_CHECK(profile_.has_value());
  return *profile_;
}

Duration VersioningScheduler::placement_penalty(const Task&, WorkerId) const {
  return 0.0;
}

VersioningScheduler::GroupKey VersioningScheduler::group_of(
    const Task& task) const {
  return {task.type, profile_->group_key(task.data_set_size)};
}

bool VersioningScheduler::reliable_runnable(TaskTypeId type,
                                            std::uint64_t size) const {
  bool any_runnable = false;
  for (VersionId v : ctx_->registry().versions(type)) {
    const TaskVersion& version = ctx_->registry().version(v);
    if (ctx_->machine().count_workers(version.device) == 0) continue;
    any_runnable = true;
    if (profile_->count(type, v, size) < config_.lambda) return false;
  }
  VERSA_CHECK_MSG(any_runnable, "no runnable version for task on this machine");
  return true;
}

std::uint64_t VersioningScheduler::price_group(const Task& task) const {
  return profile_->group_key(task.data_set_size);
}

Duration VersioningScheduler::estimate_for(const Task& task,
                                           VersionId version) const {
  // §IV-B with a fallback chain for the unknown-mean case: charging zero
  // would make a worker buried under unmeasured tasks look idle.
  if (const auto mean =
          profile_->mean(task.type, version, task.data_set_size)) {
    return *mean;
  }
  if (task.scheduler_estimate > 0.0) return task.scheduler_estimate;
  return profile_
      ->nearest_group_mean(task.type, version,
                           profile_->group_key(task.data_set_size))
      .value_or(0.0);
}

Duration VersioningScheduler::estimated_busy(WorkerId worker) const {
  if (debug_cross_check_) {
    // O(queue) rescan reference: the queued charge must equal the sum of
    // the current means of the queued tasks (push-time charges where the
    // mean is unknown — exactly what scheduler_estimate froze). Exact only
    // while the queues are quiescent or runtime-lock serialized (the sim
    // backend and the tests that enable it); the snapshot and the account
    // read are two separate critical sections.
    core::Ticks reference = 0;
    for (TaskId id : queued_tasks(worker)) {
      const Task& task = ctx_->graph().task(id);
      const auto mean =
          profile_->mean(task.type, task.chosen_version, task.data_set_size);
      reference += core::to_ticks(mean.value_or(task.scheduler_estimate));
    }
    versa::LockGuard lock(account_mutex_);
    // The reference above priced with *current* means, so deferred
    // re-prices must land before the comparison.
    flush_deferred_reprices();
    VERSA_CHECK_MSG(reference == account_.queued_ticks(worker),
                    "incremental busy account diverged from rescan reference");
    return account_.busy(worker);
  }
  return QueueScheduler::estimated_busy(worker);
}

WorkerId VersioningScheduler::least_busy_worker(
    const TaskVersion& version) const {
  // The finish-time index orders workers by (busy, queue length, id) —
  // the historical tie-break — so this is one O(log workers) lookup.
  versa::LockGuard lock(account_mutex_);
  flush_deferred_reprices();
  return account_.least_busy(version.device);
}

void VersioningScheduler::push_learning(Task& task, VersionId version,
                                        WorkerId worker) {
  ++learning_executions_;
  ++learning_inflight_[{group_of(task), version}];
  PushInfo info;
  info.estimate = estimate_for(task, version);
  info.learning = true;
  push_to_worker(task, version, worker, info);
}

bool VersioningScheduler::try_place(Task& task) {
  if (reliable_runnable(task.type, task.data_set_size)) {
    assign_earliest_executor(task);
    return true;
  }
  // Learning phase: round-robin over versions that still need runs, with
  // at most λ in-flight apiece so no version can swamp a worker before a
  // single measurement lands.
  const std::vector<VersionId>& versions =
      ctx_->registry().versions(task.type);
  const GroupKey group = group_of(task);
  std::size_t& cursor = rr_cursor_[group];
  for (std::size_t i = 0; i < versions.size(); ++i) {
    const VersionId v = versions[(cursor + i) % versions.size()];
    const std::uint32_t done = static_cast<std::uint32_t>(
        profile_->count(task.type, v, task.data_set_size));
    const auto inflight_it = learning_inflight_.find({group, v});
    const std::uint32_t inflight =
        inflight_it == learning_inflight_.end() ? 0 : inflight_it->second;
    if (done + inflight >= config_.lambda) continue;
    const WorkerId worker = least_busy_worker(ctx_->registry().version(v));
    if (worker == kInvalidWorker) continue;  // device has no workers
    cursor = (cursor + i + 1) % versions.size();
    push_learning(task, v, worker);
    return true;
  }
  return false;  // every learning slot is taken; wait in the pool
}

void VersioningScheduler::task_ready(Task& task) {
  if (!try_place(task)) {
    pool_.push_back(task.id);
  }
}

void VersioningScheduler::drain_pool() {
  std::deque<TaskId> remaining;
  while (!pool_.empty()) {
    const TaskId id = pool_.front();
    pool_.pop_front();
    Task& task = ctx_->graph().task(id);
    if (!try_place(task)) {
      remaining.push_back(id);
    }
  }
  pool_ = std::move(remaining);
}

void VersioningScheduler::assign_earliest_executor(Task& task) {
  // Earliest executor: minimize busy(worker) + mean(version) (+ extension
  // penalty) over every (version, compatible worker) pair. In the
  // fastest-executor ablation the busy term is dropped, so the fastest
  // version always wins regardless of queue depth.
  VersionId best_version = kInvalidVersion;
  WorkerId best_worker = kInvalidWorker;
  Duration best_finish = 0.0;
  Duration best_estimate = 0.0;
  Duration best_penalty = 0.0;
  std::uint32_t candidates = 0;

  // Directory-reading penalties race with prefetch acquires on worker
  // threads (the directory synchronizes itself, off the runtime lock):
  // residency can move between pricing a candidate and committing the
  // placement. Sample the per-shard epochs of the shards this task's
  // accesses touch (shard_epoch) around the evaluation and re-price once
  // if they moved — the placement is then either consistent with a
  // directory state that existed during the walk, or (second attempt) a
  // best-effort estimate, which is all a heuristic penalty ever was.
  // Acquires over shards outside the task's footprint no longer trigger
  // the re-price. Under the sim backend the epochs cannot move mid-walk
  // (single threaded), so the loop runs exactly once and stays
  // deterministic.
  const bool epoch_sensitive = placement_penalty_uses_directory();
  const std::uint64_t shard_mask =
      epoch_sensitive ? DataDirectory::shard_mask(task.accesses) : 0;
  const std::size_t worker_count = ctx_->machine().worker_count();
  std::vector<Duration> penalties(worker_count, 0.0);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t epoch_before =
        epoch_sensitive ? ctx_->directory().shard_epoch(shard_mask) : 0;
    // Placement penalties are computed before the account critical
    // section: the locality subclass reads the data directory (lock class
    // data/data.shard, ranks 13/14), which must not be acquired under the
    // account lock (rank 20).
    for (WorkerId w = 0; w < worker_count; ++w) {
      penalties[w] = placement_penalty(task, w);
    }
    if (!epoch_sensitive ||
        ctx_->directory().shard_epoch(shard_mask) == epoch_before) {
      break;
    }
  }

  {
    // The whole candidate walk reads the finish-time index under the
    // account lock; the push below re-acquires it, after the decision.
    versa::LockGuard lock(account_mutex_);
    flush_deferred_reprices();
    for (VersionId v : ctx_->registry().versions(task.type)) {
      const TaskVersion& version = ctx_->registry().version(v);
      const auto mean = profile_->mean(task.type, v, task.data_set_size);
      if (!mean) continue;  // version's device has no workers (never ran)
      if (fastest_executor_only_) {
        // Ablation strawman: the queue-length epsilon only spreads exact
        // ties; perf is irrelevant, so keep the plain worker sweep.
        for (const WorkerDesc& w : ctx_->machine().workers()) {
          if (w.kind != version.device) continue;
          const Duration busy =
              static_cast<Duration>(queue_length(w.id)) * 1e-12;
          const Duration penalty = penalties[w.id];
          const Duration finish = busy + *mean + penalty;
          ++candidates;
          if (best_worker == kInvalidWorker || finish < best_finish) {
            best_version = v;
            best_worker = w.id;
            best_finish = finish;
            best_estimate = *mean;
            best_penalty = penalty;
          }
        }
        continue;
      }
      // Finish-time index walk: workers of the version's kind arrive in
      // increasing busy order, so the first one whose lower bound
      // busy + mean cannot beat the best finish ends the version (the
      // placement penalty is never negative).
      for (const core::LoadAccount::IndexKey& key :
           account_.workers_by_busy(version.device)) {
        const Duration busy = core::to_seconds(std::get<0>(key));
        if (best_worker != kInvalidWorker && busy + *mean >= best_finish) {
          break;
        }
        const WorkerId w = std::get<2>(key);
        const Duration penalty = penalties[w];
        const Duration finish = busy + *mean + penalty;
        ++candidates;
        if (best_worker == kInvalidWorker || finish < best_finish) {
          best_version = v;
          best_worker = w;
          best_finish = finish;
          best_estimate = *mean;
          best_penalty = penalty;
        }
      }
    }
  }
  VERSA_CHECK_MSG(best_worker != kInvalidWorker,
                  "no runnable version for task on this machine");
  PushInfo info;
  info.estimate = best_estimate;
  info.penalty = best_penalty;
  info.candidates = candidates;
  push_to_worker(task, best_version, best_worker, info);
}

TaskId VersioningScheduler::pull_from_pool(WorkerId worker) {
  const DeviceKind kind = ctx_->machine().worker(worker).kind;
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    Task& task = ctx_->graph().task(*it);
    // Candidate versions of this task runnable on the idle worker.
    VersionId under_sampled = kInvalidVersion;
    VersionId fastest = kInvalidVersion;
    Duration fastest_mean = 0.0;
    for (VersionId v : ctx_->registry().versions(task.type)) {
      if (ctx_->registry().version(v).device != kind) continue;
      if (profile_->count(task.type, v, task.data_set_size) < config_.lambda &&
          under_sampled == kInvalidVersion) {
        under_sampled = v;
      }
      const auto mean = profile_->mean(task.type, v, task.data_set_size);
      if (mean && (fastest == kInvalidVersion || *mean < fastest_mean)) {
        fastest = v;
        fastest_mean = *mean;
      }
    }
    VersionId choice = under_sampled != kInvalidVersion ? under_sampled
                                                        : fastest;
    if (choice == kInvalidVersion) {
      // No mean yet and nothing under-sampled can only happen when some
      // other device is still learning; run any version of our kind.
      for (VersionId v : ctx_->registry().versions(task.type)) {
        if (ctx_->registry().version(v).device == kind) {
          choice = v;
          break;
        }
      }
    }
    if (choice == kInvalidVersion) continue;  // task not for this device
    pool_.erase(it);
    push_learning(task, choice, worker);
    return QueueScheduler::pop_task(worker);
  }
  return kInvalidTask;
}

TaskId VersioningScheduler::pop_task(WorkerId worker) {
  // The base pop moves the task's charge into the worker's running slot;
  // nothing versioning-specific remains here beyond the pool fallback.
  TaskId id = QueueScheduler::pop_task(worker);
  if (id == kInvalidTask && !pool_.empty()) {
    id = pull_from_pool(worker);
  }
  return id;
}

void VersioningScheduler::task_completed(Task& task, WorkerId worker,
                                         Duration measured) {
  // The scheduler is always learning (§IV-B): record in both phases. The
  // record fires the mean listener, which marks the key dirty; the
  // deferred re-price lands at the next flush (round boundary or the
  // next price-reading walk), coalescing completion bursts.
  profile_->record(task.type, task.chosen_version, task.data_set_size,
                   measured);
  QueueScheduler::task_completed(task, worker, measured);
  auto it = learning_inflight_.find({group_of(task), task.chosen_version});
  if (it != learning_inflight_.end() && it->second > 0) {
    --it->second;
  }
  drain_pool();
}

void VersioningScheduler::task_failed(Task& task, WorkerId worker) {
  // Release the per-worker accounting without recording the wasted time
  // as a measurement (the attempt tells us nothing about the version's
  // true cost, only that the device hiccupped).
  QueueScheduler::task_failed(task, worker);
  auto it = learning_inflight_.find({group_of(task), task.chosen_version});
  if (it != learning_inflight_.end() && it->second > 0) {
    --it->second;
  }
}

bool VersioningScheduler::has_pending() const {
  return QueueScheduler::has_pending() || !pool_.empty();
}

}  // namespace versa
