#include "sched/versioning_scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace versa {

VersioningScheduler::VersioningScheduler(ProfileConfig config)
    : config_(config) {}

void VersioningScheduler::attach(SchedulerContext& ctx) {
  QueueScheduler::attach(ctx);
  profile_.emplace(ctx.registry(), config_);
  learning_executions_ = 0;
  pool_.clear();
  learning_inflight_.clear();
  rr_cursor_.clear();
  running_estimate_.assign(ctx.machine().worker_count(), 0.0);
}

const ProfileTable& VersioningScheduler::profile() const {
  VERSA_CHECK(profile_.has_value());
  return *profile_;
}

ProfileTable& VersioningScheduler::mutable_profile() {
  VERSA_CHECK(profile_.has_value());
  return *profile_;
}

Duration VersioningScheduler::placement_penalty(const Task&, WorkerId) const {
  return 0.0;
}

VersioningScheduler::GroupKey VersioningScheduler::group_of(
    const Task& task) const {
  return {task.type, profile_->group_key(task.data_set_size)};
}

bool VersioningScheduler::reliable_runnable(TaskTypeId type,
                                            std::uint64_t size) const {
  bool any_runnable = false;
  for (VersionId v : ctx_->registry().versions(type)) {
    const TaskVersion& version = ctx_->registry().version(v);
    if (ctx_->machine().count_workers(version.device) == 0) continue;
    any_runnable = true;
    if (profile_->count(type, v, size) < config_.lambda) return false;
  }
  VERSA_CHECK_MSG(any_runnable, "no runnable version for task on this machine");
  return true;
}

Duration VersioningScheduler::estimated_busy(WorkerId worker) const {
  VERSA_CHECK(worker < running_estimate_.size());
  // §IV-B: the sum of the estimated execution times of the task versions
  // in the worker's queue — evaluated against the *current* means, so the
  // estimate tightens as the profile learns.
  Duration busy = running_estimate_[worker];
  for (TaskId id : queue(worker)) {
    const Task& task = ctx_->graph().task(id);
    busy += profile_->mean(task.type, task.chosen_version, task.data_set_size)
                .value_or(0.0);
  }
  return busy;
}

WorkerId VersioningScheduler::least_busy_worker(
    const TaskVersion& version) const {
  WorkerId best = kInvalidWorker;
  Duration best_busy = 0.0;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.kind != version.device) continue;
    const Duration busy = estimated_busy(w.id);
    if (best == kInvalidWorker || busy < best_busy ||
        (busy == best_busy && queue_length(w.id) < queue_length(best))) {
      best = w.id;
      best_busy = busy;
    }
  }
  return best;
}

void VersioningScheduler::push_learning(Task& task, VersionId version,
                                        WorkerId worker) {
  ++learning_executions_;
  ++learning_inflight_[{group_of(task), version}];
  task.scheduler_estimate =
      profile_->mean(task.type, version, task.data_set_size).value_or(0.0);
  push_to_worker(task, version, worker);
}

bool VersioningScheduler::try_place(Task& task) {
  if (reliable_runnable(task.type, task.data_set_size)) {
    assign_earliest_executor(task);
    return true;
  }
  // Learning phase: round-robin over versions that still need runs, with
  // at most λ in-flight apiece so no version can swamp a worker before a
  // single measurement lands.
  const std::vector<VersionId>& versions =
      ctx_->registry().versions(task.type);
  const GroupKey group = group_of(task);
  std::size_t& cursor = rr_cursor_[group];
  for (std::size_t i = 0; i < versions.size(); ++i) {
    const VersionId v = versions[(cursor + i) % versions.size()];
    const std::uint32_t done = static_cast<std::uint32_t>(
        profile_->count(task.type, v, task.data_set_size));
    const auto inflight_it = learning_inflight_.find({group, v});
    const std::uint32_t inflight =
        inflight_it == learning_inflight_.end() ? 0 : inflight_it->second;
    if (done + inflight >= config_.lambda) continue;
    const WorkerId worker = least_busy_worker(ctx_->registry().version(v));
    if (worker == kInvalidWorker) continue;  // device has no workers
    cursor = (cursor + i + 1) % versions.size();
    push_learning(task, v, worker);
    return true;
  }
  return false;  // every learning slot is taken; wait in the pool
}

void VersioningScheduler::task_ready(Task& task) {
  if (!try_place(task)) {
    pool_.push_back(task.id);
  }
}

void VersioningScheduler::drain_pool() {
  std::deque<TaskId> remaining;
  while (!pool_.empty()) {
    const TaskId id = pool_.front();
    pool_.pop_front();
    Task& task = ctx_->graph().task(id);
    if (!try_place(task)) {
      remaining.push_back(id);
    }
  }
  pool_ = std::move(remaining);
}

void VersioningScheduler::assign_earliest_executor(Task& task) {
  // Earliest executor: minimize busy(worker) + mean(version) (+ extension
  // penalty) over every (version, compatible worker) pair. In the
  // fastest-executor ablation the busy term is dropped, so the fastest
  // version always wins regardless of queue depth.
  VersionId best_version = kInvalidVersion;
  WorkerId best_worker = kInvalidWorker;
  Duration best_finish = 0.0;
  Duration best_estimate = 0.0;

  for (VersionId v : ctx_->registry().versions(task.type)) {
    const TaskVersion& version = ctx_->registry().version(v);
    const auto mean = profile_->mean(task.type, v, task.data_set_size);
    if (!mean) continue;  // version's device has no workers (never ran)
    for (const WorkerDesc& w : ctx_->machine().workers()) {
      if (w.kind != version.device) continue;
      const Duration busy =
          fastest_executor_only_
              ? static_cast<Duration>(queue_length(w.id)) * 1e-12
              : estimated_busy(w.id);
      const Duration finish = busy + *mean + placement_penalty(task, w.id);
      if (best_worker == kInvalidWorker || finish < best_finish) {
        best_version = v;
        best_worker = w.id;
        best_finish = finish;
        best_estimate = *mean;
      }
    }
  }
  VERSA_CHECK_MSG(best_worker != kInvalidWorker,
                  "no runnable version for task on this machine");
  task.scheduler_estimate = best_estimate;
  push_to_worker(task, best_version, best_worker);
}

TaskId VersioningScheduler::pull_from_pool(WorkerId worker) {
  const DeviceKind kind = ctx_->machine().worker(worker).kind;
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    Task& task = ctx_->graph().task(*it);
    // Candidate versions of this task runnable on the idle worker.
    VersionId under_sampled = kInvalidVersion;
    VersionId fastest = kInvalidVersion;
    Duration fastest_mean = 0.0;
    for (VersionId v : ctx_->registry().versions(task.type)) {
      if (ctx_->registry().version(v).device != kind) continue;
      if (profile_->count(task.type, v, task.data_set_size) < config_.lambda &&
          under_sampled == kInvalidVersion) {
        under_sampled = v;
      }
      const auto mean = profile_->mean(task.type, v, task.data_set_size);
      if (mean && (fastest == kInvalidVersion || *mean < fastest_mean)) {
        fastest = v;
        fastest_mean = *mean;
      }
    }
    VersionId choice = under_sampled != kInvalidVersion ? under_sampled
                                                        : fastest;
    if (choice == kInvalidVersion) {
      // No mean yet and nothing under-sampled can only happen when some
      // other device is still learning; run any version of our kind.
      for (VersionId v : ctx_->registry().versions(task.type)) {
        if (ctx_->registry().version(v).device == kind) {
          choice = v;
          break;
        }
      }
    }
    if (choice == kInvalidVersion) continue;  // task not for this device
    pool_.erase(it);
    push_learning(task, choice, worker);
    return QueueScheduler::pop_task(worker);
  }
  return kInvalidTask;
}

TaskId VersioningScheduler::pop_task(WorkerId worker) {
  TaskId id = QueueScheduler::pop_task(worker);
  if (id == kInvalidTask && !pool_.empty()) {
    id = pull_from_pool(worker);
  }
  if (id != kInvalidTask) {
    const Task& task = ctx_->graph().task(id);
    running_estimate_[worker] =
        profile_->mean(task.type, task.chosen_version, task.data_set_size)
            .value_or(0.0);
  }
  return id;
}

void VersioningScheduler::task_completed(Task& task, WorkerId worker,
                                         Duration measured) {
  // The scheduler is always learning (§IV-B): record in both phases.
  profile_->record(task.type, task.chosen_version, task.data_set_size,
                   measured);
  running_estimate_[worker] = 0.0;
  auto it = learning_inflight_.find({group_of(task), task.chosen_version});
  if (it != learning_inflight_.end() && it->second > 0) {
    --it->second;
  }
  drain_pool();
}

void VersioningScheduler::task_failed(Task& task, WorkerId worker) {
  // Release the per-worker accounting without recording the wasted time
  // as a measurement (the attempt tells us nothing about the version's
  // true cost, only that the device hiccupped).
  running_estimate_[worker] = 0.0;
  auto it = learning_inflight_.find({group_of(task), task.chosen_version});
  if (it != learning_inflight_.end() && it->second > 0) {
    --it->second;
  }
}

bool VersioningScheduler::has_pending() const {
  return QueueScheduler::has_pending() || !pool_.empty();
}

}  // namespace versa
