#include "sched/dep_aware_scheduler.h"

#include "common/check.h"

namespace versa {

DepAwareScheduler::DepAwareScheduler() {
  // Chains go cold when producers and consumers target different devices;
  // stealing keeps same-kind workers busy, at the cost of extra transfers
  // (the behaviour the paper observes for its baselines on Cholesky).
  set_stealing(true);
}

void DepAwareScheduler::task_completed(Task& task, WorkerId worker,
                                       Duration measured) {
  QueueScheduler::task_completed(task, worker, measured);
  // The runtime calls task_ready for the released successors immediately
  // after this, so remembering the completing worker implements a cheap
  // "continue the chain where its input was produced" rule.
  releasing_worker_ = worker;
}

void DepAwareScheduler::task_ready(Task& task) {
  const TaskVersion& main = main_version_of(task);
  // Chain rule: released by a completion on a compatible worker -> same
  // worker. Otherwise (or for dependence-free tasks) spread by load.
  if (releasing_worker_ != kInvalidWorker &&
      ctx_->machine().worker(releasing_worker_).kind == main.device) {
    PushInfo info;
    info.candidates = 1;
    push_to_worker(task, main.id, releasing_worker_, info);
    return;
  }
  const std::vector<WorkerId> candidates = compatible_workers(main);
  PushInfo info;
  info.candidates = static_cast<std::uint32_t>(candidates.size());
  push_to_worker(task, main.id, least_loaded(candidates), info);
}

}  // namespace versa
