// Affinity scheduler (paper §V-A): for each ready task, evaluates the
// amount of data that would have to be transferred to each candidate
// device's memory space and assigns the task where that amount is minimal,
// exploiting data locality to cut memory transfers. Main implementation
// only; same-kind work stealing balances load (at the cost of transfers,
// as the paper observes on Cholesky).
#pragma once

#include "sched/scheduler.h"

namespace versa {

class AffinityScheduler final : public QueueScheduler {
 public:
  AffinityScheduler();
  const char* name() const override { return "affinity"; }
  void task_ready(Task& task) override;
};

}  // namespace versa
