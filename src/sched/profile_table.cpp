#include "sched/profile_table.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace versa {

ProfileTable::ProfileTable(const VersionRegistry& registry,
                           ProfileConfig config)
    : registry_(registry), config_(config) {
  VERSA_CHECK(config.lambda >= 1);
  VERSA_CHECK(config.range_ratio > 1.0);
}

std::uint64_t ProfileTable::group_key(std::uint64_t data_set_size) const {
  if (config_.grouping == SizeGrouping::kExact) return data_set_size;
  if (data_set_size == 0) return 0;
  // Bucket by log ratio: sizes whose log_{ratio} value rounds to the same
  // integer share a group.
  const double bucket =
      std::log(static_cast<double>(data_set_size)) / std::log(config_.range_ratio);
  return static_cast<std::uint64_t>(std::llround(bucket)) + 1;
}

void ProfileTable::record(TaskTypeId type, VersionId version,
                          std::uint64_t data_set_size, Duration measured) {
  VERSA_CHECK(measured >= 0.0);
  const std::uint64_t key = group_key(data_set_size);
  Group& group = groups_[{type, key}];
  auto [it, inserted] = group.per_version.try_emplace(version, config_);
  VersionStats& stats = it->second;
  if (stats.detector.add(measured)) {
    // Sustained shift away from the reference mean: the history is stale.
    // Forget it and fall back into the learning phase for this group; the
    // alarm observation becomes the first sample of the relearn.
    drift_events_.push_back(DriftEvent{type, key, version,
                                       stats.detector.reference(), measured,
                                       stats.mean.count()});
    stats.mean.reset();
  }
  stats.mean.add(measured);
  if (config_.drift.enabled && !stats.detector.armed() &&
      stats.mean.count() >= config_.lambda) {
    stats.detector.arm(stats.mean.mean());
  }
  notify_mean(type, version, key);
}

void ProfileTable::set_mean_listener(MeanListener listener) {
  mean_listener_ = std::move(listener);
}

void ProfileTable::notify_mean(TaskTypeId type, VersionId version,
                               std::uint64_t group_key) const {
  if (!mean_listener_) return;
  std::optional<Duration> current;
  auto group_it = groups_.find({type, group_key});
  if (group_it != groups_.end()) {
    auto it = group_it->second.per_version.find(version);
    if (it != group_it->second.per_version.end() && !it->second.mean.empty()) {
      current = it->second.mean.mean();
    }
  }
  mean_listener_(type, version, group_key, current);
}

std::optional<Duration> ProfileTable::nearest_group_mean(
    TaskTypeId type, VersionId version, std::uint64_t group_key) const {
  std::optional<Duration> best;
  std::uint64_t best_distance = 0;
  std::uint64_t best_key = 0;
  for (const auto& [key, group] : groups_) {
    if (key.first != type) continue;
    auto it = group.per_version.find(version);
    if (it == group.per_version.end() || it->second.mean.empty()) continue;
    const std::uint64_t distance = key.second > group_key
                                       ? key.second - group_key
                                       : group_key - key.second;
    if (!best || distance < best_distance ||
        (distance == best_distance && key.second < best_key)) {
      best = it->second.mean.mean();
      best_distance = distance;
      best_key = key.second;
    }
  }
  return best;
}

const ProfileTable::VersionStats* ProfileTable::find(
    TaskTypeId type, VersionId version, std::uint64_t data_set_size) const {
  auto group_it = groups_.find({type, group_key(data_set_size)});
  if (group_it == groups_.end()) return nullptr;
  auto it = group_it->second.per_version.find(version);
  if (it == group_it->second.per_version.end()) return nullptr;
  return &it->second;
}

std::optional<Duration> ProfileTable::mean(TaskTypeId type, VersionId version,
                                           std::uint64_t data_set_size) const {
  const VersionStats* stats = find(type, version, data_set_size);
  if (stats == nullptr || stats->mean.empty()) return std::nullopt;
  return stats->mean.mean();
}

std::uint64_t ProfileTable::count(TaskTypeId type, VersionId version,
                                  std::uint64_t data_set_size) const {
  const VersionStats* stats = find(type, version, data_set_size);
  return stats == nullptr ? 0 : stats->mean.count();
}

double ProfileTable::variance(TaskTypeId type, VersionId version,
                              std::uint64_t data_set_size) const {
  const VersionStats* stats = find(type, version, data_set_size);
  return stats == nullptr ? 0.0 : stats->mean.variance();
}

bool ProfileTable::reliable(TaskTypeId type,
                            std::uint64_t data_set_size) const {
  for (VersionId v : registry_.versions(type)) {
    if (count(type, v, data_set_size) < config_.lambda) return false;
  }
  return true;
}

std::optional<VersionId> ProfileTable::fastest_version(
    TaskTypeId type, std::uint64_t data_set_size) const {
  std::optional<VersionId> best;
  Duration best_mean = 0.0;
  for (VersionId v : registry_.versions(type)) {
    const auto m = mean(type, v, data_set_size);
    if (!m) continue;
    if (!best || *m < best_mean) {
      best = v;
      best_mean = *m;
    }
  }
  return best;
}

void ProfileTable::prime(TaskTypeId type, VersionId version,
                         std::uint64_t group_key, Duration mean,
                         std::uint64_t count) {
  VERSA_CHECK(count >= 1);
  Group& group = groups_[{type, group_key}];
  auto [it, inserted] = group.per_version.try_emplace(version, config_);
  // Seed by replaying `count` observations of the given mean; for the
  // arithmetic policy this reproduces (mean, count) exactly.
  for (std::uint64_t i = 0; i < count; ++i) {
    it->second.mean.add(mean);
  }
  if (config_.drift.enabled && count >= config_.lambda) {
    it->second.detector.arm(it->second.mean.mean());
  }
  notify_mean(type, version, group_key);
}

void ProfileTable::restore(TaskTypeId type, VersionId version,
                           std::uint64_t group_key, Duration mean,
                           std::uint64_t count, double m2) {
  VERSA_CHECK(count >= 1);
  VERSA_CHECK(mean >= 0.0);
  Group& group = groups_[{type, group_key}];
  auto [it, inserted] = group.per_version.try_emplace(version, config_);
  it->second.mean.restore(mean, count, m2);
  if (config_.drift.enabled && count >= config_.lambda) {
    it->second.detector.arm(mean);
  } else {
    it->second.detector.disarm();
  }
  notify_mean(type, version, group_key);
}

void ProfileTable::reset_version(TaskTypeId type, VersionId version,
                                 std::uint64_t group_key) {
  auto group_it = groups_.find({type, group_key});
  if (group_it == groups_.end()) return;
  auto it = group_it->second.per_version.find(version);
  if (it == group_it->second.per_version.end()) return;
  it->second.mean.reset();
  it->second.detector.disarm();
  notify_mean(type, version, group_key);
}

std::string ProfileTable::dump() const {
  std::ostringstream out;
  out << "TaskVersionSet | DataSetSize | <VersionId, ExecTime, #Exec>\n";
  TaskTypeId last_type = kInvalidTaskType;
  for (const auto& [key, group] : groups_) {
    const auto& [type, size_key] = key;
    const std::string type_name =
        (type == last_type) ? std::string() : registry_.task_name(type);
    last_type = type;
    bool first_line = true;
    for (const auto& [version, stats] : group.per_version) {
      out << (first_line ? type_name : std::string())
          << (first_line ? " | " : "   ")
          << (first_line
                  ? (config_.grouping == SizeGrouping::kExact
                         ? format_bytes(static_cast<double>(size_key))
                         : "group#" + std::to_string(size_key))
                  : std::string())
          << (first_line ? " | " : "     ") << "<"
          << registry_.version(version).name << ", "
          << format_duration(stats.mean.mean()) << ", " << stats.mean.count()
          << ">\n";
      first_line = false;
    }
  }
  return out.str();
}

std::vector<ProfileTable::Entry> ProfileTable::entries() const {
  std::vector<Entry> out;
  for (const auto& [key, group] : groups_) {
    for (const auto& [version, stats] : group.per_version) {
      out.push_back(Entry{key.first, key.second, version, stats.mean.mean(),
                          stats.mean.count(), stats.mean.m2()});
    }
  }
  return out;
}

std::size_t ProfileTable::group_count() const { return groups_.size(); }

}  // namespace versa
