#include "sched/core/fair_share.h"

#include "common/check.h"

namespace versa::core {

void FairShareInterleaver::set_window(std::size_t slots) {
  VERSA_CHECK_MSG(slots >= 1, "fair-share window must be at least 1");
  window_ = slots;
}

void FairShareInterleaver::set_weight(TenantId tenant, std::uint32_t weight) {
  VERSA_CHECK_MSG(weight >= 1, "fair-share weight must be at least 1");
  lane(tenant).weight = weight;
}

FairShareInterleaver::TenantLane& FairShareInterleaver::lane(TenantId tenant) {
  while (lanes_.size() <= tenant) lanes_.emplace_back();
  return lanes_[tenant];
}

bool FairShareInterleaver::offer(TenantId tenant, TaskId id) {
  TenantLane& l = lane(tenant);
  l.offered.fetch_add(1, std::memory_order_relaxed);
  if (in_window_ < window_) {
    ++in_window_;
    return true;
  }
  l.parked.push_back(id);
  ++parked_total_;
  return false;
}

bool FairShareInterleaver::advance_cursor() {
  const std::size_t n = lanes_.size();
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t c = (cursor_ + i) % n;
    if (!lanes_[c].parked.empty()) {
      cursor_ = c;
      credit_ = lanes_[c].weight;
      return true;
    }
  }
  return false;
}

void FairShareInterleaver::on_complete(TenantId tenant,
                                       std::vector<TaskId>& release) {
  lane(tenant).completed.fetch_add(1, std::memory_order_relaxed);
  VERSA_CHECK(in_window_ > 0);
  --in_window_;
  // Refill freed slots by weighted round-robin: the cursor tenant gets up
  // to `weight` consecutive releases, then the cursor moves to the next
  // tenant with parked work.
  while (in_window_ < window_ && parked_total_ > 0) {
    if (credit_ == 0 || lanes_[cursor_].parked.empty()) {
      if (!advance_cursor()) break;
    }
    TenantLane& l = lanes_[cursor_];
    release.push_back(l.parked.front());
    l.parked.pop_front();
    --parked_total_;
    ++in_window_;
    --credit_;
  }
}

std::uint64_t FairShareInterleaver::offered(TenantId tenant) const {
  if (tenant >= lanes_.size()) return 0;
  return lanes_[tenant].offered.load(std::memory_order_relaxed);
}

std::uint64_t FairShareInterleaver::completed(TenantId tenant) const {
  if (tenant >= lanes_.size()) return 0;
  return lanes_[tenant].completed.load(std::memory_order_relaxed);
}

}  // namespace versa::core
