// Sharded per-worker task queues — the data structure behind the
// ThreadExecutor lock split.
//
// Each worker owns a Shard: a mutex of class kLockRankQueue, the priority
// deque it guards, and an atomic length mirror. Push, pop and steal touch
// exactly one shard, so workers popping their own queues never contend
// with each other or with the submitting thread, and victim selection for
// stealing reads only the atomic lengths (no locks at all).
//
// A QueueEntry carries everything pop/steal/tracing need about the task
// (id, type, chosen version, priority, frozen estimate), deliberately
// duplicated out of the TaskGraph: the graph is runtime-lock-serialized,
// and the whole point of the split is that the pop fast path does not take
// the runtime lock. Executors re-home Task::assigned_worker under the
// runtime lock when they start a (possibly stolen) task.
//
// Ordering per shard matches the historical single-lock queues exactly:
// priority insertion (stable within a priority level), FIFO pop from the
// front, steals from the back so the victim keeps its locality-friendly
// head-of-queue work.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "util/annotated_sync.h"

namespace versa::core {

struct QueueEntry {
  TaskId id = kInvalidTask;
  TaskTypeId type = kInvalidTaskType;
  VersionId version = kInvalidVersion;
  int priority = 0;
  /// The charge push_to_worker froze into Task::scheduler_estimate.
  Duration estimate = 0.0;
};

class WorkerQueues {
 public:
  /// Rebuild with `worker_count` empty shards.
  void reset(std::size_t worker_count);

  /// Priority insertion into `worker`'s shard: walk back past queued
  /// entries with strictly lower priority (stable within a level).
  void push(WorkerId worker, const QueueEntry& entry);

  /// FIFO pop of `worker`'s own queue.
  std::optional<QueueEntry> pop_front(WorkerId worker);

  /// Steal from the back of `victim`'s queue. May return nullopt even
  /// after length() reported work (the entry raced away) — callers treat
  /// that as an empty victim.
  std::optional<QueueEntry> steal_back(WorkerId victim);

  /// Lock-free queue length (victim selection, tie-breaking, tests).
  /// Exact under the runtime lock; a racy snapshot otherwise.
  std::size_t length(WorkerId worker) const;

  /// Snapshot of the task ids queued on `worker`, head first (busy-time
  /// rescan cross-checks and tests).
  std::vector<TaskId> snapshot(WorkerId worker) const;

  std::size_t worker_count() const { return shards_.size(); }

 private:
  struct Shard {
    Shard() : mutex(lock_order::kLockRankQueue) {}
    mutable versa::Mutex mutex;
    std::deque<QueueEntry> entries VERSA_GUARDED_BY(mutex);
    /// Mirrors entries.size(); updated while the shard mutex is held.
    std::atomic<std::size_t> length{0};
  };

  /// unique_ptr because a Shard (mutex + atomic) is immovable.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace versa::core
