// Sharded per-worker task queues — the data structure behind the
// ThreadExecutor lock split.
//
// Each worker owns a Shard: a mutex of class kLockRankQueue, the priority
// deque it guards, and an atomic length mirror. Push, pop and steal touch
// exactly one shard, so workers popping their own queues never contend
// with each other or with the submitting thread, and victim selection for
// stealing reads only the atomic lengths (no locks at all).
//
// PR 4 adds a producer side: each shard also carries a *submission buffer*
// under its own mutex of class kLockRankSubmit (rank 17, between the
// analyzer shards and the account lock). Producers append placement records
// with buffer_push() without touching the queue mutex; the buffer is
// published into the shard by drain() — from the owning worker before it
// pops, from a thief before it steals, and from drain_all() at round
// boundaries (ready_batch_done). Draining inserts the buffered entries in
// arrival order with the same priority walk as push(), so a drained shard
// is indistinguishable from one built by direct pushes.
//
// PR 5 batches the producer side per ready batch: between begin_batch()
// and end_batch(), buffer_push() parks entries in producer-private
// per-worker runs (no lock at all — the batch window is runtime-lock
// serialized by contract) and end_batch() appends each non-empty run to
// its shard's submission buffer with ONE submit-mutex acquisition. A
// ready batch of N tasks on one worker costs one mutex round trip
// instead of N. Each shard carries an atomic `staged` count so length()
// keeps advertising the parked work to victim selection.
//
// A QueueEntry carries everything pop/steal/tracing need about the task
// (id, type, chosen version, priority, frozen estimate, price group),
// deliberately duplicated out of the TaskGraph: the graph is
// runtime-lock-serialized, and the whole point of the split is that the
// pop fast path does not take the runtime lock. Executors re-home
// Task::assigned_worker under the runtime lock when they start a
// (possibly stolen) task.
//
// Ordering per shard matches the historical single-lock queues exactly:
// priority insertion (stable within a priority level), FIFO pop from the
// front, steals from the back so the victim keeps its locality-friendly
// head-of-queue work.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "util/annotated_sync.h"

namespace versa::core {

struct QueueEntry {
  TaskId id = kInvalidTask;
  TaskTypeId type = kInvalidTaskType;
  VersionId version = kInvalidVersion;
  int priority = 0;
  /// The charge push_to_worker froze into Task::scheduler_estimate.
  Duration estimate = 0.0;
  /// Price group of the task (third PriceKey component) so the pop/steal
  /// paths can flush a deferred re-price of exactly this key.
  std::uint64_t group = 0;
  /// Owning tenant (service mode) — carried so steal/complete trace events
  /// can attribute the task without touching the runtime-locked graph.
  TenantId tenant = kDefaultTenant;
};

class WorkerQueues {
 public:
  /// Rebuild with `worker_count` empty shards (and empty buffers).
  void reset(std::size_t worker_count);

  /// Priority insertion into `worker`'s shard: walk back past queued
  /// entries with strictly lower priority (stable within a level).
  void push(WorkerId worker, const QueueEntry& entry);

  /// Producer-side append to `worker`'s submission buffer. Takes only the
  /// shard's submit mutex (kLockRankSubmit) — never the queue mutex — so
  /// producers do not contend with the owner's pop fast path. The entry
  /// becomes poppable/stealable after the next drain of this shard.
  /// Inside a batch window (begin_batch/end_batch) the entry is instead
  /// parked lock-free in the producer-private run for `worker` and
  /// published by end_batch().
  void buffer_push(WorkerId worker, const QueueEntry& entry);

  /// Open a staging window: subsequent buffer_push calls accumulate in
  /// per-worker runs. The window — begin, the pushes, end — must be
  /// serialized by the caller (the runtime lock brackets it via
  /// ready_batch_begin/done); pop/steal/drain/length stay concurrent.
  void begin_batch();

  /// Close the window: append each non-empty run to its shard's
  /// submission buffer under one submit-mutex acquisition, bumping
  /// batch_appends() once per run. Entries become poppable after the
  /// next drain, exactly as with unbatched buffer_push. No-op when no
  /// window is open (drivers may call ready_batch_done without begin).
  void end_batch();

  /// Non-empty per-shard runs end_batch() has appended (observability:
  /// batches < tasks placed proves per-task round trips coalesced).
  std::uint64_t batch_appends() const {
    return batch_appends_.load(std::memory_order_relaxed);
  }

  /// Publish `worker`'s buffered entries into its shard, inserting each in
  /// arrival order with the same priority walk as push(). Cheap no-op
  /// (one relaxed atomic load) when the buffer is empty. Nests submit(17)
  /// under queue(30) — callers must not hold the account lock (rank 20).
  void drain(WorkerId worker);

  /// drain() every shard — the round-boundary publish.
  void drain_all();

  /// FIFO pop of `worker`'s own queue (drained entries only — callers
  /// drain first; see Scheduler::try_pop_queued).
  std::optional<QueueEntry> pop_front(WorkerId worker);

  /// Steal from the back of `victim`'s queue. May return nullopt even
  /// after length() reported work (the entry raced away) — callers treat
  /// that as an empty victim.
  std::optional<QueueEntry> steal_back(WorkerId victim);

  /// Lock-free queue length including still-buffered entries (victim
  /// selection, tie-breaking, tests). Exact under the runtime lock; a
  /// racy snapshot otherwise.
  std::size_t length(WorkerId worker) const;

  /// Entries currently parked in `worker`'s submission buffer (tests,
  /// drain early-out).
  std::size_t buffered_length(WorkerId worker) const;

  /// Snapshot of the task ids queued on `worker`, head first, shard
  /// entries before still-buffered ones, then any batch-staged run (busy-
  /// time rescan cross-checks and tests — buffered and staged entries are
  /// already charged in the account). The staged run is read without a
  /// lock, so calling this mid-window is only valid from the thread that
  /// owns the window (the runtime-lock holder) — which is where the
  /// rescan runs.
  std::vector<TaskId> snapshot(WorkerId worker) const;

  std::size_t worker_count() const { return shards_.size(); }

 private:
  struct Shard {
    Shard()
        : mutex(lock_order::kLockRankQueue),
          submit_mutex(lock_order::kLockRankSubmit) {}
    mutable versa::Mutex mutex;
    std::deque<QueueEntry> entries VERSA_GUARDED_BY(mutex);
    /// Mirrors entries.size(); updated while the shard mutex is held.
    /// length() reports this plus `buffered`.
    std::atomic<std::size_t> length{0};
    mutable versa::Mutex submit_mutex;
    /// Producer-appended entries awaiting the next drain, arrival order.
    std::deque<QueueEntry> buffer VERSA_GUARDED_BY(submit_mutex);
    /// Mirrors buffer.size(); drain()'s empty early-out reads it lock-free.
    std::atomic<std::size_t> buffered{0};
    /// Entries parked in the producer-private staging run for this shard
    /// (batch window only). Counted by length() so victim selection keeps
    /// seeing the work; briefly double-counted with `buffered` while
    /// end_batch publishes (length() is a racy snapshot by contract).
    std::atomic<std::size_t> staged{0};
  };

  /// Priority-insertion walk shared by push() and drain().
  static void insert_locked(Shard& shard, const QueueEntry& entry)
      VERSA_REQUIRES(shard.mutex);

  /// unique_ptr because a Shard (mutexes + atomics) is immovable.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Batch window state. Deliberately NOT lock-guarded: the window is
  /// serialized by the caller's runtime lock (see begin_batch), and no
  /// concurrent path reads the runs — only the atomic Shard::staged
  /// counts escape the window. Runs keep their capacity across batches.
  bool batching_ = false;
  std::vector<std::vector<QueueEntry>> staged_;
  std::atomic<std::uint64_t> batch_appends_{0};
};

}  // namespace versa::core
