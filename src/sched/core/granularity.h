// Adaptive task granularity — the profile-guided split/fuse controller
// (DESIGN.md §11). HeSP showed that on heterogeneous machines scheduling
// and task *partitioning* must be co-optimized; this controller turns the
// per-data-set-size profile groups the paper's versioning scheduler
// already maintains into an active granularity policy:
//
//  * Too coarse — the profiled mean of a submission's (type, size) group
//    dwarfs the spread of the per-worker finish-time estimates (the tile
//    serializes the machine): re-tile it into child subtasks over
//    sub-regions of the declared accesses, via an app-registered
//    SplitRecipe.
//  * Too fine — the profiled mean is within a small multiple of the
//    per-task runtime overhead (dispatch cost dominates useful work):
//    coalesce compatible sibling submissions into one fused task, via an
//    app-registered FuseRecipe.
//
// The controller learns from both tilings. Child/fused observations are
// fed back against the *original* granularity key (the (type, size) group
// the submission would have landed in untouched), and a per-group CUSUM —
// the same change-detection shape as the profile drift path — reverses a
// decision that keeps losing to the profiled baseline.
//
// Thread-safety: decision and feedback state is externally serialized by
// the runtime lock (kLockRankRuntime), exactly like the ProfileTable it
// reads — decide() fires from Runtime::submit and record_*_outcome from
// port_complete, both under the lock. The controller takes no lock of its
// own and must never be reached from the lock-split pop/steal fast path.
// Reading the load-account spread (Scheduler::estimated_busy, rank 20)
// from under the runtime lock (rank 10) respects the lock order.
//
// Off by default: the runtime only constructs a controller when
// --granularity / VERSA_GRANULARITY asks for one, so fixed-seed paper
// figures are byte-identical with the feature disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "sched/profile_table.h"
#include "task/access.h"

namespace versa::core {

enum class GranularityMode : std::uint8_t {
  kOff,    ///< controller not constructed; zero behaviour change
  kAuto,   ///< profile-guided split/fuse with CUSUM reversal
  kFixed,  ///< always split by a fixed factor (ablation / figures)
};

const char* to_string(GranularityMode mode);

struct GranularityConfig {
  GranularityMode mode = GranularityMode::kOff;

  /// kFixed: split every recipe-covered submission this many ways.
  std::uint32_t fixed_factor = 1;

  /// kAuto split rule: re-tile when the group mean exceeds
  /// split_threshold * max(busy spread, 32 * overhead_estimate).
  double split_threshold = 2.0;

  /// Estimated per-task runtime overhead (submission + scheduling +
  /// dispatch), seconds. Floors the split rule and drives the fuse rule.
  double overhead_estimate = 20e-6;

  /// kAuto fuse rule: coalesce siblings when the group mean is below
  /// fuse_threshold * overhead_estimate.
  double fuse_threshold = 4.0;

  /// Upper bound on the split factor (also clamped per recipe).
  std::uint32_t max_factor = 8;

  /// Reversal CUSUM: a split/fuse outcome is "losing" when it exceeds the
  /// profiled baseline by more than reversal_margin (plus the per-child
  /// overhead the decision added); the cumulative excess raising above
  /// reversal_threshold * baseline reverses the decision for the group.
  double reversal_margin = 0.10;
  double reversal_threshold = 3.0;

  /// Global cap on sibling submissions coalesced into one fused task
  /// (each recipe may bound itself tighter).
  std::uint32_t fuse_window = 4;
};

/// Parse a --granularity / VERSA_GRANULARITY value: "off", "auto", or an
/// integer N (N <= 1 -> off, N > 1 -> fixed split by N). Returns false
/// (config untouched) on anything else.
bool parse_granularity(const std::string& text, GranularityConfig& config);

/// How an app re-tiles one task type. `partition` receives the parent's
/// resolved access list and must fill `parts` with `factor` child access
/// lists whose byte ranges cover the parent's exactly (the dependence
/// property test in tests/granularity_dep_property_test.cpp pins this
/// contract); returning false declines the split for this instance (e.g.
/// the factor does not divide the tile).
struct SplitRecipe {
  TaskTypeId child_type = kInvalidTaskType;
  std::uint32_t max_factor = 8;
  std::function<bool(const AccessList&, std::uint32_t factor,
                     std::vector<AccessList>& parts)>
      partition;
};

/// Convenience partition for the common GEMM-like access shape
/// [A, B, C] where C row i depends only on A row i plus all of B (every
/// row-major C += / -= A * op(B) kernel): splits accesses 0 and 2 into
/// `factor` equal row bands of stride `row_bytes` and keeps access 1
/// whole. Declines (returns false) on a different shape, on mismatched
/// A/C lengths, or when the row count does not divide by the factor.
std::function<bool(const AccessList&, std::uint32_t, std::vector<AccessList>&)>
row_band_partition(std::uint64_t row_bytes);

/// How an app coalesces sibling submissions of one task type. `can_fuse`
/// says whether a new submission may join a window whose last member has
/// the given access list; `fuse` builds the fused task's access list from
/// the members' lists (order preserved).
struct FuseRecipe {
  TaskTypeId fused_type = kInvalidTaskType;
  std::uint32_t window = 2;
  std::function<bool(const AccessList& last, const AccessList& next)> can_fuse;
  std::function<AccessList(const std::vector<AccessList>&)> fuse;
};

enum class GranularityDecision : std::uint8_t { kKeep, kSplit, kFuse };

class GranularityController {
 public:
  explicit GranularityController(GranularityConfig config);

  /// Profile table the auto mode reads its group means from; may be null
  /// (non-versioning schedulers), which makes kAuto inert while kFixed
  /// keeps working. Borrowed, must outlive the controller.
  void set_profile(const ProfileTable* profile) { profile_ = profile; }

  void set_split_recipe(TaskTypeId type, SplitRecipe recipe);
  void set_fuse_recipe(TaskTypeId type, FuseRecipe recipe);
  const SplitRecipe* split_recipe(TaskTypeId type) const;
  const FuseRecipe* fuse_recipe(TaskTypeId type) const;

  /// Decide for one submission. `spread` is the max-min gap of the
  /// per-worker busy estimates at submission time (the finish-time index
  /// imbalance the split rule compares the mean against). On kSplit,
  /// `factor` is the chosen child count (>= 2).
  GranularityDecision decide(TaskTypeId type, std::uint64_t data_set_size,
                             Duration spread, std::uint32_t& factor) const;

  /// Feedback: all children of one split finished with `children_total`
  /// summed execution time. Returns true when this outcome tripped the
  /// CUSUM and reversed splitting for the group.
  bool record_split_outcome(TaskTypeId type, std::uint64_t data_set_size,
                            Duration children_total, std::uint32_t children);

  /// Feedback: a fused task standing for `fused` original submissions of
  /// (type, size) finished in `fused_total`. Returns true on reversal.
  bool record_fuse_outcome(TaskTypeId type, std::uint64_t data_set_size,
                           Duration fused_total, std::uint32_t fused);

  /// Group key the feedback and breakdown are bucketed by: the profile's
  /// grouping when a table is attached, the raw size otherwise.
  std::uint64_t group_key(std::uint64_t data_set_size) const;

  struct Stats {
    std::uint64_t splits = 0;
    std::uint64_t fuses = 0;
    std::uint64_t reversals = 0;
    std::uint64_t children_created = 0;
    std::uint64_t tasks_fused = 0;  ///< original submissions absorbed
  };
  const Stats& stats() const { return stats_; }

  /// Per-(type, group) decision history for reporting.
  struct GroupRow {
    TaskTypeId type = kInvalidTaskType;
    std::uint64_t group = 0;
    std::uint64_t splits = 0;
    std::uint64_t fuses = 0;
    std::uint64_t reversals = 0;
    std::uint64_t children_created = 0;
    std::uint64_t tasks_fused = 0;
    bool split_reversed = false;
    bool fuse_reversed = false;
  };
  std::vector<GroupRow> breakdown() const;

  const GranularityConfig& config() const { return config_; }

 private:
  struct GroupState {
    std::uint64_t splits = 0;
    std::uint64_t fuses = 0;
    std::uint64_t reversals = 0;
    std::uint64_t children_created = 0;
    std::uint64_t tasks_fused = 0;
    double split_cusum = 0.0;
    double fuse_cusum = 0.0;
    bool split_reversed = false;
    bool fuse_reversed = false;
  };

  /// Mean of the group's fastest known version at the original key —
  /// the baseline both the decision and the reversal compare against.
  std::optional<Duration> baseline_mean(TaskTypeId type,
                                        std::uint64_t data_set_size) const;

  GroupState& group_state(TaskTypeId type, std::uint64_t data_set_size);
  const GroupState* find_group(TaskTypeId type,
                               std::uint64_t data_set_size) const;

  GranularityConfig config_;
  const ProfileTable* profile_ = nullptr;
  std::map<TaskTypeId, SplitRecipe> split_recipes_;
  std::map<TaskTypeId, FuseRecipe> fuse_recipes_;
  std::map<std::pair<TaskTypeId, std::uint64_t>, GroupState> groups_;
  Stats stats_;
};

}  // namespace versa::core
