// Decision trace — a ring-buffered event stream emitted by the scheduling
// core. Every placement (learning or reliable phase), steal, transient
// failure and completion is recorded with the terms that drove the
// decision (charged worker's busy time, the version mean, the locality
// penalty, and the number of candidate (version, worker) pairs evaluated),
// so a run can be audited after the fact without instrumenting a policy.
//
// Disabled by default and free when disabled (one relaxed atomic load per
// event). When enabled, the ring is guarded by an internal mutex of class
// kLockRankTrace (the innermost scheduler lock): steals and pops record
// events from worker threads outside the runtime lock since the
// ThreadExecutor lock split, so the trace synchronizes itself. The ring
// keeps the last `capacity` events plus totals, bounding memory at PBPI
// scale; src/perf/sched_trace.h renders the buffer as a table and as
// Chrome-trace counter tracks (versa_run --sched-trace).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "util/annotated_sync.h"

namespace versa::core {

enum class TraceEventKind : std::uint8_t {
  kPlacement,          ///< reliable-phase placement (earliest executor &c.)
  kLearningPlacement,  ///< learning-phase forced sampling placement
  kSteal,              ///< same-kind work steal re-homed a queued task
  kFailure,            ///< transient failure released a running charge
  kComplete,           ///< completion released a running charge
  kSplit,              ///< granularity controller re-tiled a submission
  kFuse,               ///< granularity controller coalesced siblings
  kReversal,           ///< controller CUSUM reversed a split/fuse group
  kPrefetchPlaced,     ///< prefetch intent claimed at placement time
  kPrefetchDequeue,    ///< prefetch intent claimed by the dequeue fallback
  kPrefetchStale,      ///< prefetch intent dropped (task already staged)
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  Time time = 0.0;
  TaskId task = kInvalidTask;
  TaskTypeId type = kInvalidTaskType;
  VersionId version = kInvalidVersion;
  WorkerId worker = kInvalidWorker;
  /// Chosen worker's estimated busy time when the decision was made (for
  /// kComplete/kFailure: the busy time left after the release).
  Duration busy_term = 0.0;
  /// Estimated execution time charged (for kComplete: the measured
  /// duration that was recorded into the profile).
  Duration mean_term = 0.0;
  /// Extra placement cost (locality transfer estimate; zero elsewhere).
  Duration penalty_term = 0.0;
  /// (version, worker) pairs evaluated before choosing.
  std::uint32_t candidates = 0;
  TraceEventKind kind = TraceEventKind::kPlacement;
  /// Owning tenant (service mode; kDefaultTenant outside it). Appended
  /// last so existing aggregate initializers keep their field order.
  TenantId tenant = kDefaultTenant;
  /// Granularity events (kSplit/kFuse/kReversal): the data-set-size group
  /// key the decision was bucketed by, and the child-task count (children
  /// created by a split; original submissions folded by a fuse). Prefetch
  /// events (kPrefetch*) reuse `group` for the bytes the staged acquire
  /// copied (0 for kPrefetchStale or when everything was already
  /// resident). Zero on every other kind. Appended after tenant so
  /// existing aggregate initializers keep their field order.
  std::uint64_t group = 0;
  std::uint32_t children = 0;
};

class DecisionTrace {
 public:
  /// Start recording into a ring of `capacity` events (>= 1). Not
  /// thread-safe against concurrent record() — enable before the run.
  void enable(std::size_t capacity);
  void disable();
  bool enabled() const {
    return capacity_.load(std::memory_order_relaxed) != 0;
  }

  void record(const TraceEvent& event);

  /// Events recorded since enable() (including overwritten ones).
  std::uint64_t total() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

 private:
  mutable versa::Mutex mutex_{lock_order::kLockRankTrace};
  std::vector<TraceEvent> ring_ VERSA_GUARDED_BY(mutex_);
  /// Mirrors the enabled state for the free-when-disabled fast path; only
  /// enable()/disable() write it (with mutex_ held).
  std::atomic<std::size_t> capacity_{0};
  std::uint64_t total_ VERSA_GUARDED_BY(mutex_) = 0;
};

}  // namespace versa::core
