#include "sched/core/worker_queues.h"

#include "common/check.h"

namespace versa::core {

void WorkerQueues::reset(std::size_t worker_count) {
  shards_.clear();
  shards_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void WorkerQueues::insert_locked(Shard& shard, const QueueEntry& entry) {
  auto it = shard.entries.end();
  while (it != shard.entries.begin() && (it - 1)->priority < entry.priority) {
    --it;
  }
  shard.entries.insert(it, entry);
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
}

void WorkerQueues::push(WorkerId worker, const QueueEntry& entry) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  insert_locked(shard, entry);
}

void WorkerQueues::buffer_push(WorkerId worker, const QueueEntry& entry) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.submit_mutex);
  shard.buffer.push_back(entry);
  // Release pairs with drain()'s acquire so a drainer that observes the
  // count also observes the entry.
  shard.buffered.store(shard.buffer.size(), std::memory_order_release);
}

void WorkerQueues::drain(WorkerId worker) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  if (shard.buffered.load(std::memory_order_acquire) == 0) return;
  versa::LockGuard submit_lock(shard.submit_mutex);
  if (shard.buffer.empty()) return;  // raced with another drainer
  versa::LockGuard queue_lock(shard.mutex);
  for (const QueueEntry& entry : shard.buffer) {
    insert_locked(shard, entry);
  }
  shard.buffer.clear();
  shard.buffered.store(0, std::memory_order_release);
}

void WorkerQueues::drain_all() {
  for (WorkerId worker = 0; worker < shards_.size(); ++worker) {
    drain(worker);
  }
}

std::optional<QueueEntry> WorkerQueues::pop_front(WorkerId worker) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.front();
  shard.entries.pop_front();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::optional<QueueEntry> WorkerQueues::steal_back(WorkerId victim) {
  VERSA_CHECK(victim < shards_.size());
  Shard& shard = *shards_[victim];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.back();
  shard.entries.pop_back();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::size_t WorkerQueues::length(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  const Shard& shard = *shards_[worker];
  return shard.length.load(std::memory_order_relaxed) +
         shard.buffered.load(std::memory_order_relaxed);
}

std::size_t WorkerQueues::buffered_length(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  return shards_[worker]->buffered.load(std::memory_order_relaxed);
}

std::vector<TaskId> WorkerQueues::snapshot(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  const Shard& shard = *shards_[worker];
  // submit(16) before queue(30): documented rank order.
  versa::LockGuard submit_lock(shard.submit_mutex);
  versa::LockGuard lock(shard.mutex);
  std::vector<TaskId> out;
  out.reserve(shard.entries.size() + shard.buffer.size());
  for (const QueueEntry& entry : shard.entries) {
    out.push_back(entry.id);
  }
  for (const QueueEntry& entry : shard.buffer) {
    out.push_back(entry.id);
  }
  return out;
}

}  // namespace versa::core
