#include "sched/core/worker_queues.h"

#include "common/check.h"

namespace versa::core {

void WorkerQueues::reset(std::size_t worker_count) {
  shards_.clear();
  shards_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void WorkerQueues::push(WorkerId worker, const QueueEntry& entry) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  auto it = shard.entries.end();
  while (it != shard.entries.begin() && (it - 1)->priority < entry.priority) {
    --it;
  }
  shard.entries.insert(it, entry);
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
}

std::optional<QueueEntry> WorkerQueues::pop_front(WorkerId worker) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.front();
  shard.entries.pop_front();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::optional<QueueEntry> WorkerQueues::steal_back(WorkerId victim) {
  VERSA_CHECK(victim < shards_.size());
  Shard& shard = *shards_[victim];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.back();
  shard.entries.pop_back();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::size_t WorkerQueues::length(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  return shards_[worker]->length.load(std::memory_order_relaxed);
}

std::vector<TaskId> WorkerQueues::snapshot(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  const Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  std::vector<TaskId> out;
  out.reserve(shard.entries.size());
  for (const QueueEntry& entry : shard.entries) {
    out.push_back(entry.id);
  }
  return out;
}

}  // namespace versa::core
