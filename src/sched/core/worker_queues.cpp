#include "sched/core/worker_queues.h"

#include "common/check.h"

namespace versa::core {

void WorkerQueues::reset(std::size_t worker_count) {
  shards_.clear();
  shards_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  batching_ = false;
  staged_.assign(worker_count, {});
  batch_appends_.store(0, std::memory_order_relaxed);
}

void WorkerQueues::insert_locked(Shard& shard, const QueueEntry& entry) {
  auto it = shard.entries.end();
  while (it != shard.entries.begin() && (it - 1)->priority < entry.priority) {
    --it;
  }
  shard.entries.insert(it, entry);
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
}

void WorkerQueues::push(WorkerId worker, const QueueEntry& entry) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  insert_locked(shard, entry);
}

void WorkerQueues::buffer_push(WorkerId worker, const QueueEntry& entry) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  if (batching_) {
    // Lock-free park into the window's run; the entry is published to the
    // shard (and to concurrent drainers) by end_batch. Only the atomic
    // staged count escapes the window — it keeps length() advertising the
    // parked work to victim selection.
    staged_[worker].push_back(entry);
    shard.staged.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  versa::LockGuard lock(shard.submit_mutex);
  shard.buffer.push_back(entry);
  // Release pairs with drain()'s acquire so a drainer that observes the
  // count also observes the entry.
  shard.buffered.store(shard.buffer.size(), std::memory_order_release);
}

void WorkerQueues::begin_batch() {
  VERSA_CHECK_MSG(!batching_, "batch window already open");
  batching_ = true;
}

void WorkerQueues::end_batch() {
  // No-op without an open window: drivers that only call ready_batch_done
  // (the pre-batching contract, kept valid) pushed straight to the
  // buffers, so there is nothing to publish.
  if (!batching_) return;
  batching_ = false;
  for (WorkerId worker = 0; worker < staged_.size(); ++worker) {
    std::vector<QueueEntry>& run = staged_[worker];
    if (run.empty()) continue;
    Shard& shard = *shards_[worker];
    {
      // One submit-mutex round trip for the whole run.
      versa::LockGuard lock(shard.submit_mutex);
      shard.buffer.insert(shard.buffer.end(), run.begin(), run.end());
      shard.buffered.store(shard.buffer.size(), std::memory_order_release);
    }
    // Publish before un-staging so length() briefly double-counts rather
    // than dipping (it is a racy snapshot either way).
    shard.staged.fetch_sub(run.size(), std::memory_order_relaxed);
    run.clear();
    batch_appends_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkerQueues::drain(WorkerId worker) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  if (shard.buffered.load(std::memory_order_acquire) == 0) return;
  versa::LockGuard submit_lock(shard.submit_mutex);
  if (shard.buffer.empty()) return;  // raced with another drainer
  versa::LockGuard queue_lock(shard.mutex);
  for (const QueueEntry& entry : shard.buffer) {
    insert_locked(shard, entry);
  }
  shard.buffer.clear();
  shard.buffered.store(0, std::memory_order_release);
}

void WorkerQueues::drain_all() {
  for (WorkerId worker = 0; worker < shards_.size(); ++worker) {
    drain(worker);
  }
}

std::optional<QueueEntry> WorkerQueues::pop_front(WorkerId worker) {
  VERSA_CHECK(worker < shards_.size());
  Shard& shard = *shards_[worker];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.front();
  shard.entries.pop_front();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::optional<QueueEntry> WorkerQueues::steal_back(WorkerId victim) {
  VERSA_CHECK(victim < shards_.size());
  Shard& shard = *shards_[victim];
  versa::LockGuard lock(shard.mutex);
  if (shard.entries.empty()) return std::nullopt;
  QueueEntry entry = shard.entries.back();
  shard.entries.pop_back();
  shard.length.store(shard.entries.size(), std::memory_order_relaxed);
  return entry;
}

std::size_t WorkerQueues::length(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  const Shard& shard = *shards_[worker];
  return shard.length.load(std::memory_order_relaxed) +
         shard.buffered.load(std::memory_order_relaxed) +
         shard.staged.load(std::memory_order_relaxed);
}

std::size_t WorkerQueues::buffered_length(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  return shards_[worker]->buffered.load(std::memory_order_relaxed);
}

std::vector<TaskId> WorkerQueues::snapshot(WorkerId worker) const {
  VERSA_CHECK(worker < shards_.size());
  const Shard& shard = *shards_[worker];
  // submit(17) before queue(30): documented rank order.
  versa::LockGuard submit_lock(shard.submit_mutex);
  versa::LockGuard lock(shard.mutex);
  std::vector<TaskId> out;
  out.reserve(shard.entries.size() + shard.buffer.size());
  for (const QueueEntry& entry : shard.entries) {
    out.push_back(entry.id);
  }
  for (const QueueEntry& entry : shard.buffer) {
    out.push_back(entry.id);
  }
  // Batch-staged run last (unlocked by design — see the declaration).
  for (const QueueEntry& entry : staged_[worker]) {
    out.push_back(entry.id);
  }
  return out;
}

}  // namespace versa::core
