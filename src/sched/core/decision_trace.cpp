#include "sched/core/decision_trace.h"

#include "common/check.h"

namespace versa::core {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPlacement:
      return "place";
    case TraceEventKind::kLearningPlacement:
      return "learn";
    case TraceEventKind::kSteal:
      return "steal";
    case TraceEventKind::kFailure:
      return "fail";
    case TraceEventKind::kComplete:
      return "done";
  }
  return "?";
}

void DecisionTrace::enable(std::size_t capacity) {
  VERSA_CHECK(capacity >= 1);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity < 4096 ? capacity : 4096);
  total_ = 0;
}

void DecisionTrace::disable() {
  capacity_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
  total_ = 0;
}

void DecisionTrace::record(const TraceEvent& event) {
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;
  }
  ++total_;
}

std::vector<TraceEvent> DecisionTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= ring_.size()) {
    out = ring_;
  } else {
    const std::size_t head = total_ % capacity_;  // oldest retained slot
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

}  // namespace versa::core
