#include "sched/core/decision_trace.h"

#include "common/check.h"

namespace versa::core {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPlacement:
      return "place";
    case TraceEventKind::kLearningPlacement:
      return "learn";
    case TraceEventKind::kSteal:
      return "steal";
    case TraceEventKind::kFailure:
      return "fail";
    case TraceEventKind::kComplete:
      return "done";
    case TraceEventKind::kSplit:
      return "split";
    case TraceEventKind::kFuse:
      return "fuse";
    case TraceEventKind::kReversal:
      return "revert";
    case TraceEventKind::kPrefetchPlaced:
      return "prefetch";
    case TraceEventKind::kPrefetchDequeue:
      return "prefetch-pop";
    case TraceEventKind::kPrefetchStale:
      return "prefetch-stale";
  }
  return "?";
}

void DecisionTrace::enable(std::size_t capacity) {
  VERSA_CHECK(capacity >= 1);
  versa::LockGuard lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  ring_.clear();
  ring_.reserve(capacity < 4096 ? capacity : 4096);
  total_ = 0;
}

void DecisionTrace::disable() {
  versa::LockGuard lock(mutex_);
  capacity_.store(0, std::memory_order_relaxed);
  ring_.clear();
  ring_.shrink_to_fit();
  total_ = 0;
}

void DecisionTrace::record(const TraceEvent& event) {
  if (!enabled()) return;
  versa::LockGuard lock(mutex_);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return;  // disabled between the check and the lock
  if (ring_.size() < capacity) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity] = event;
  }
  ++total_;
}

std::uint64_t DecisionTrace::total() const {
  versa::LockGuard lock(mutex_);
  return total_;
}

std::uint64_t DecisionTrace::dropped() const {
  versa::LockGuard lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<TraceEvent> DecisionTrace::events() const {
  versa::LockGuard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= ring_.size()) {
    out = ring_;
  } else {
    const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
    const std::size_t head = total_ % capacity;  // oldest retained slot
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

}  // namespace versa::core
