#include "sched/core/load_account.h"

#include <cmath>

#include "common/check.h"

namespace versa::core {

Ticks to_ticks(Duration seconds) {
  VERSA_CHECK(seconds >= 0.0);
  return static_cast<Ticks>(std::llround(seconds / kSecondsPerTick));
}

Duration to_seconds(Ticks ticks) {
  return static_cast<Duration>(ticks) * kSecondsPerTick;
}

void LoadAccount::reset(const Machine& machine) {
  const std::size_t n = machine.worker_count();
  queued_.assign(n, 0);
  running_.assign(n, 0);
  counts_.assign(n, 0);
  kinds_.assign(n, DeviceKind::kSmp);
  for (KindIndex& index : index_) index.clear();
  buckets_.clear();
  entries_.clear();
  for (const WorkerDesc& w : machine.workers()) {
    kinds_[w.id] = w.kind;
    index_of(w.id).insert(index_key(w.id));
  }
}

LoadAccount::IndexKey LoadAccount::index_key(WorkerId worker) const {
  return {queued_[worker] + running_[worker], counts_[worker], worker};
}

LoadAccount::KindIndex& LoadAccount::index_of(WorkerId worker) {
  return index_[static_cast<std::size_t>(kinds_[worker])];
}

template <typename Fn>
void LoadAccount::mutate(WorkerId worker, Fn&& fn) {
  KindIndex& index = index_of(worker);
  index.erase(index_key(worker));
  fn();
  index.insert(index_key(worker));
}

Ticks LoadAccount::effective(const TaskEntry& entry,
                             const Bucket& bucket) const {
  // An entry older than its bucket's epoch was swept up by a reprice: it
  // is implicitly charged the bucket price. When the price is unknown the
  // entry keeps (or reverts to) its push-time charge.
  if (bucket.price.has_value() && entry.epoch < bucket.epoch) {
    return *bucket.price;
  }
  return entry.charge;
}

Duration LoadAccount::on_push(TaskId task, const PriceKey& key,
                              WorkerId worker, Duration estimate) {
  VERSA_CHECK(worker < queued_.size());
  Bucket& bucket = buckets_[key];
  const Ticks charge =
      bucket.price.has_value() ? *bucket.price : to_ticks(estimate);
  const auto [it, inserted] =
      entries_.try_emplace(task, TaskEntry{key, worker, charge, bucket.epoch});
  VERSA_CHECK_MSG(inserted, "task pushed twice into the load account");
  WorkerShare& share = bucket.shares[worker];
  ++share.count;
  share.charged += charge;
  share.frozen += charge;
  mutate(worker, [&] {
    queued_[worker] += charge;
    ++counts_[worker];
  });
  return to_seconds(charge);
}

Duration LoadAccount::on_pop(TaskId task, WorkerId worker) {
  const auto it = entries_.find(task);
  VERSA_CHECK_MSG(it != entries_.end(), "pop of an untracked task");
  const TaskEntry entry = it->second;
  VERSA_CHECK_MSG(entry.worker == worker, "pop from the wrong worker");
  entries_.erase(it);
  Bucket& bucket = buckets_[entry.key];
  const Ticks charge = effective(entry, bucket);
  const auto share_it = bucket.shares.find(worker);
  VERSA_CHECK(share_it != bucket.shares.end());
  WorkerShare& share = share_it->second;
  VERSA_CHECK(share.count > 0);
  --share.count;
  share.charged -= charge;
  share.frozen -= entry.charge;
  if (share.count == 0) bucket.shares.erase(share_it);
  mutate(worker, [&] {
    queued_[worker] -= charge;
    --counts_[worker];
    // One running slot per worker, overwritten: nested-taskwait inline
    // execution pops while the parent still runs, and the historical
    // accounting kept only the latest estimate.
    running_[worker] = charge;
  });
  return to_seconds(charge);
}

void LoadAccount::on_settle(WorkerId worker) {
  VERSA_CHECK(worker < running_.size());
  mutate(worker, [&] { running_[worker] = 0; });
}

void LoadAccount::on_steal(TaskId task, WorkerId victim, WorkerId thief) {
  const auto it = entries_.find(task);
  VERSA_CHECK_MSG(it != entries_.end(), "steal of an untracked task");
  TaskEntry& entry = it->second;
  VERSA_CHECK_MSG(entry.worker == victim, "steal from the wrong victim");
  Bucket& bucket = buckets_[entry.key];
  const Ticks charge = effective(entry, bucket);
  const auto share_it = bucket.shares.find(victim);
  VERSA_CHECK(share_it != bucket.shares.end());
  WorkerShare& from = share_it->second;
  --from.count;
  from.charged -= charge;
  from.frozen -= entry.charge;
  if (from.count == 0) bucket.shares.erase(share_it);
  WorkerShare& to = bucket.shares[thief];
  ++to.count;
  to.charged += charge;
  to.frozen += entry.charge;
  entry.worker = thief;
  mutate(victim, [&] {
    queued_[victim] -= charge;
    --counts_[victim];
  });
  mutate(thief, [&] {
    queued_[thief] += charge;
    ++counts_[thief];
  });
}

void LoadAccount::reprice(const PriceKey& key, std::optional<Duration> mean) {
  Bucket& bucket = buckets_[key];
  bucket.price = mean.has_value() ? std::optional<Ticks>(to_ticks(*mean))
                                  : std::nullopt;
  ++bucket.epoch;
  for (auto& [worker, share] : bucket.shares) {
    const Ticks target = bucket.price.has_value()
                             ? static_cast<Ticks>(share.count) * *bucket.price
                             : share.frozen;
    if (target == share.charged) continue;
    const Ticks delta = target - share.charged;
    share.charged = target;
    mutate(worker, [&, w = worker] { queued_[w] += delta; });
  }
}

Duration LoadAccount::busy(WorkerId worker) const {
  return to_seconds(busy_ticks(worker));
}

Ticks LoadAccount::busy_ticks(WorkerId worker) const {
  VERSA_CHECK(worker < queued_.size());
  return queued_[worker] + running_[worker];
}

Ticks LoadAccount::queued_ticks(WorkerId worker) const {
  VERSA_CHECK(worker < queued_.size());
  return queued_[worker];
}

Ticks LoadAccount::running_ticks(WorkerId worker) const {
  VERSA_CHECK(worker < running_.size());
  return running_[worker];
}

std::uint32_t LoadAccount::queued_count(WorkerId worker) const {
  VERSA_CHECK(worker < counts_.size());
  return counts_[worker];
}

const LoadAccount::KindIndex& LoadAccount::workers_by_busy(
    DeviceKind kind) const {
  return index_[static_cast<std::size_t>(kind)];
}

WorkerId LoadAccount::least_busy(DeviceKind kind) const {
  const KindIndex& index = workers_by_busy(kind);
  if (index.empty()) return kInvalidWorker;
  return std::get<2>(*index.begin());
}

}  // namespace versa::core
