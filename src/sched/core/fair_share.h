// Weighted fair-share dispatch gate — the service-mode interleaver that
// sits between dependence release and the scheduler (DESIGN.md §10).
//
// Without it, a tenant that submits a 10k-task graph monopolizes the
// sharded WorkerQueues: every ready task is pushed the moment its
// dependencies clear, so a later tenant's graph queues behind the whole
// backlog. The gate bounds the number of *dispatched* (pushed but not yet
// finished) tasks to a window (default 4× workers) and parks the overflow
// in per-tenant FIFO queues. Each completion frees one window slot and
// refills it by weighted round-robin across the tenants with parked work:
// a tenant of weight w gets up to w consecutive releases before the cursor
// moves on, so the long-run completed-task share of backlogged tenants is
// proportional to their weights — while a lone tenant still gets the whole
// window (work-conserving).
//
// Locking: all mutating calls happen under the runtime lock by contract
// (offer from release_ready, on_complete from port_complete — both
// runtime-lock serialized), so the gate needs no mutex of its own and adds
// no lock class. The per-tenant counters are atomics so VersaService can
// read stats without touching the runtime lock.
//
// The gate assumes non-nested graphs (a running task never blocks on a
// parked child); VersaService only installs it for service-built graphs,
// which have no nesting. Failure re-readies bypass the gate — a failed
// task keeps the slot it was dispatched with until it finally completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace versa::core {

class FairShareInterleaver {
 public:
  FairShareInterleaver() = default;
  FairShareInterleaver(const FairShareInterleaver&) = delete;
  FairShareInterleaver& operator=(const FairShareInterleaver&) = delete;

  /// Maximum dispatched-but-unfinished tasks before offers park (>= 1).
  void set_window(std::size_t slots);
  std::size_t window() const { return window_; }

  /// Relative share of `tenant` (>= 1; unregistered tenants default to 1).
  void set_weight(TenantId tenant, std::uint32_t weight);

  /// A task of `tenant` became ready. True: a window slot was charged and
  /// the caller dispatches it now. False: parked; it will be handed back
  /// by a later on_complete() once the round-robin reaches its tenant.
  bool offer(TenantId tenant, TaskId id);

  /// A dispatched task of `tenant` finished: free its slot and refill the
  /// window from parked queues by weighted round-robin, appending the
  /// released task ids to `release` (caller dispatches them).
  void on_complete(TenantId tenant, std::vector<TaskId>& release);

  /// Tasks currently parked across all tenants.
  std::size_t parked() const { return parked_total_; }
  /// Window slots currently charged.
  std::size_t in_flight() const { return in_window_; }

  // --- stats (lock-free reads) -------------------------------------------
  std::uint64_t offered(TenantId tenant) const;
  std::uint64_t completed(TenantId tenant) const;

 private:
  struct TenantLane {
    std::uint32_t weight = 1;
    std::deque<TaskId> parked;
    std::atomic<std::uint64_t> offered{0};
    std::atomic<std::uint64_t> completed{0};

    TenantLane() = default;
    // deque growth moves lanes during single-producer registration only.
    TenantLane(TenantLane&& other) noexcept
        : weight(other.weight),
          parked(std::move(other.parked)),
          offered(other.offered.load(std::memory_order_relaxed)),
          completed(other.completed.load(std::memory_order_relaxed)) {}
  };

  TenantLane& lane(TenantId tenant);
  /// Move the cursor to the next tenant with parked work; false if none.
  bool advance_cursor();

  std::size_t window_ = 64;
  std::size_t in_window_ = 0;
  std::size_t parked_total_ = 0;
  std::size_t cursor_ = 0;
  std::uint32_t credit_ = 0;
  std::deque<TenantLane> lanes_;
};

}  // namespace versa::core
