#include "sched/core/granularity.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace versa::core {

const char* to_string(GranularityMode mode) {
  switch (mode) {
    case GranularityMode::kOff:
      return "off";
    case GranularityMode::kAuto:
      return "auto";
    case GranularityMode::kFixed:
      return "fixed";
  }
  return "?";
}

bool parse_granularity(const std::string& text, GranularityConfig& config) {
  if (text == "off") {
    config.mode = GranularityMode::kOff;
    return true;
  }
  if (text == "auto") {
    config.mode = GranularityMode::kAuto;
    return true;
  }
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || end == text.c_str() || *end != '\0') return false;
  // Out-of-range factors would silently truncate through the uint32
  // member; reject them instead (strtoul saturates with ERANGE).
  if (errno == ERANGE ||
      value > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  if (value <= 1) {
    config.mode = GranularityMode::kOff;
  } else {
    config.mode = GranularityMode::kFixed;
    config.fixed_factor = static_cast<std::uint32_t>(value);
  }
  return true;
}

std::function<bool(const AccessList&, std::uint32_t, std::vector<AccessList>&)>
row_band_partition(std::uint64_t row_bytes) {
  VERSA_CHECK(row_bytes > 0);
  return [row_bytes](const AccessList& parent, std::uint32_t factor,
                     std::vector<AccessList>& parts) {
    if (parent.size() != 3 || factor < 2) return false;
    if (parent[0].length != parent[2].length) return false;
    if (parent[0].length % row_bytes != 0) return false;
    const std::uint64_t rows = parent[0].length / row_bytes;
    if (rows % factor != 0) return false;
    const std::uint64_t band_bytes = (rows / factor) * row_bytes;
    parts.clear();
    parts.reserve(factor);
    for (std::uint32_t r = 0; r < factor; ++r) {
      const std::uint64_t off = static_cast<std::uint64_t>(r) * band_bytes;
      Access a = parent[0], b = parent[1], c = parent[2];
      a.offset += off;
      a.length = band_bytes;
      c.offset += off;
      c.length = band_bytes;
      parts.push_back({a, b, c});
    }
    return true;
  };
}

GranularityController::GranularityController(GranularityConfig config)
    : config_(config) {
  VERSA_CHECK(config_.mode != GranularityMode::kOff);
  VERSA_CHECK(config_.split_threshold > 0.0);
  VERSA_CHECK(config_.overhead_estimate > 0.0);
}

void GranularityController::set_split_recipe(TaskTypeId type,
                                             SplitRecipe recipe) {
  VERSA_CHECK(recipe.child_type != kInvalidTaskType);
  VERSA_CHECK(recipe.partition != nullptr);
  split_recipes_[type] = std::move(recipe);
}

void GranularityController::set_fuse_recipe(TaskTypeId type,
                                            FuseRecipe recipe) {
  VERSA_CHECK(recipe.fused_type != kInvalidTaskType);
  VERSA_CHECK(recipe.can_fuse != nullptr && recipe.fuse != nullptr);
  VERSA_CHECK(recipe.window >= 2);
  fuse_recipes_[type] = std::move(recipe);
}

const SplitRecipe* GranularityController::split_recipe(TaskTypeId type) const {
  auto it = split_recipes_.find(type);
  return it == split_recipes_.end() ? nullptr : &it->second;
}

const FuseRecipe* GranularityController::fuse_recipe(TaskTypeId type) const {
  auto it = fuse_recipes_.find(type);
  return it == fuse_recipes_.end() ? nullptr : &it->second;
}

std::uint64_t GranularityController::group_key(
    std::uint64_t data_set_size) const {
  return profile_ != nullptr ? profile_->group_key(data_set_size)
                             : data_set_size;
}

std::optional<Duration> GranularityController::baseline_mean(
    TaskTypeId type, std::uint64_t data_set_size) const {
  if (profile_ == nullptr) return std::nullopt;
  const std::optional<VersionId> fastest =
      profile_->fastest_version(type, data_set_size);
  if (!fastest) return std::nullopt;
  return profile_->mean(type, *fastest, data_set_size);
}

GranularityController::GroupState& GranularityController::group_state(
    TaskTypeId type, std::uint64_t data_set_size) {
  return groups_[{type, group_key(data_set_size)}];
}

const GranularityController::GroupState* GranularityController::find_group(
    TaskTypeId type, std::uint64_t data_set_size) const {
  auto it = groups_.find({type, group_key(data_set_size)});
  return it == groups_.end() ? nullptr : &it->second;
}

GranularityDecision GranularityController::decide(TaskTypeId type,
                                                  std::uint64_t data_set_size,
                                                  Duration spread,
                                                  std::uint32_t& factor) const {
  const SplitRecipe* split = split_recipe(type);
  const FuseRecipe* fuse = fuse_recipe(type);
  if (split == nullptr && fuse == nullptr) return GranularityDecision::kKeep;
  const GroupState* group = find_group(type, data_set_size);

  if (config_.mode == GranularityMode::kFixed) {
    // Ablation mode: re-tile everything a recipe covers by the fixed
    // factor, no profile consulted, no fusion, no reversal.
    if (split == nullptr || config_.fixed_factor < 2) {
      return GranularityDecision::kKeep;
    }
    factor = std::min(config_.fixed_factor, split->max_factor);
    return factor >= 2 ? GranularityDecision::kSplit
                       : GranularityDecision::kKeep;
  }

  // kAuto: no profiled mean for the group yet means we are still in the
  // learning phase at this granularity — leave the tiling alone so the
  // profile fills in at the original key first.
  const std::optional<Duration> mean = baseline_mean(type, data_set_size);
  if (!mean) return GranularityDecision::kKeep;

  if (fuse != nullptr && (group == nullptr || !group->fuse_reversed) &&
      *mean < config_.fuse_threshold * config_.overhead_estimate) {
    return GranularityDecision::kFuse;
  }

  if (split != nullptr && (group == nullptr || !group->split_reversed)) {
    // The tile is "too coarse" when its own mean dominates the current
    // imbalance of the per-worker finish-time estimates: placing it
    // anywhere moves that worker's finish time far past the others, so
    // sub-tiles would let the slow devices share the work. The overhead
    // floor keeps a freshly-idle machine (spread 0) from splitting tasks
    // already near the overhead scale.
    const Duration floor =
        std::max(spread, 32.0 * config_.overhead_estimate);
    if (*mean > config_.split_threshold * floor) {
      const std::uint32_t max_factor =
          std::min(config_.max_factor, split->max_factor);
      // Smallest power-of-two factor that brings the per-child mean under
      // the threshold, clamped to the recipe's bound.
      std::uint32_t chosen = 2;
      while (chosen < max_factor &&
             *mean / chosen > config_.split_threshold * floor) {
        chosen *= 2;
      }
      factor = std::min(chosen, max_factor);
      if (factor >= 2) return GranularityDecision::kSplit;
    }
  }
  return GranularityDecision::kKeep;
}

bool GranularityController::record_split_outcome(TaskTypeId type,
                                                 std::uint64_t data_set_size,
                                                 Duration children_total,
                                                 std::uint32_t children) {
  GroupState& group = group_state(type, data_set_size);
  ++group.splits;
  group.children_created += children;
  ++stats_.splits;
  stats_.children_created += children;
  if (config_.mode != GranularityMode::kAuto || group.split_reversed) {
    return false;
  }
  const std::optional<Duration> baseline =
      baseline_mean(type, data_set_size);
  if (!baseline || *baseline <= 0.0) return false;
  // CUSUM on the excess of the children's summed time over the profiled
  // single-task baseline (allowing the margin plus the overhead the extra
  // tasks genuinely cost). A split that pays off drains the accumulator;
  // one that keeps losing trips the alarm and is reversed for the group.
  const double excess =
      children_total - *baseline * (1.0 + config_.reversal_margin) -
      static_cast<double>(children) * config_.overhead_estimate;
  group.split_cusum = std::max(0.0, group.split_cusum + excess);
  if (group.split_cusum > config_.reversal_threshold * *baseline) {
    group.split_reversed = true;
    group.split_cusum = 0.0;
    ++group.reversals;
    ++stats_.reversals;
    return true;
  }
  return false;
}

bool GranularityController::record_fuse_outcome(TaskTypeId type,
                                                std::uint64_t data_set_size,
                                                Duration fused_total,
                                                std::uint32_t fused) {
  GroupState& group = group_state(type, data_set_size);
  ++group.fuses;
  // tasks_fused counts *absorbed* submissions: a fused batch of N stands
  // for N - 1 tasks that never dispatched.
  const std::uint32_t absorbed = fused > 0 ? fused - 1 : 0;
  group.tasks_fused += absorbed;
  ++stats_.fuses;
  stats_.tasks_fused += absorbed;
  if (config_.mode != GranularityMode::kAuto || group.fuse_reversed) {
    return false;
  }
  const std::optional<Duration> baseline =
      baseline_mean(type, data_set_size);
  if (!baseline || *baseline <= 0.0) return false;
  // Fusing pays when one fused execution beats `fused` separate ones
  // (which each also paid the per-task overhead the fusion saved).
  const double separate =
      static_cast<double>(fused) *
      (*baseline * (1.0 + config_.reversal_margin) + config_.overhead_estimate);
  const double excess = fused_total - separate;
  group.fuse_cusum = std::max(0.0, group.fuse_cusum + excess);
  if (group.fuse_cusum >
      config_.reversal_threshold * *baseline * static_cast<double>(fused)) {
    group.fuse_reversed = true;
    group.fuse_cusum = 0.0;
    ++group.reversals;
    ++stats_.reversals;
    return true;
  }
  return false;
}

std::vector<GranularityController::GroupRow> GranularityController::breakdown()
    const {
  std::vector<GroupRow> rows;
  rows.reserve(groups_.size());
  for (const auto& [key, state] : groups_) {
    GroupRow row;
    row.type = key.first;
    row.group = key.second;
    row.splits = state.splits;
    row.fuses = state.fuses;
    row.reversals = state.reversals;
    row.children_created = state.children_created;
    row.tasks_fused = state.tasks_fused;
    row.split_reversed = state.split_reversed;
    row.fuse_reversed = state.fuse_reversed;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace versa::core
