// Incremental per-worker load accounting — the heart of the scheduling
// core. The paper's earliest-executor rule (§IV-B) needs every worker's
// estimated busy time on every placement; recomputing it by rescanning the
// worker's queue against the current profile means is O(queue depth) per
// query and collapses at PBPI scale. The LoadAccount maintains the same
// quantity incrementally:
//
//   * on_push     — charge the task's estimate to the worker's queued sum
//   * on_pop      — move the charge to the worker's running slot
//   * on_settle   — release the running slot (completion or transient
//                   failure; the paper's rule never keeps stale charges)
//   * on_steal    — re-home a queued charge between same-kind workers
//   * reprice     — a profile mean moved (new measurement, drift-relearn
//                   reset, warm-start restore): patch the charges of every
//                   *queued* task priced by that (type, version, group)
//                   key, per worker, in O(workers holding the key) — no
//                   queue rescan. Running charges stay frozen at their
//                   pop-time price, matching the historical accounting.
//
// Charges are held in integer picosecond ticks so incremental addition and
// subtraction are exact (associative): after any op sequence the account is
// bit-identical to an O(queue) rescan reference, which the property test
// and the debug cross-check in VersioningScheduler rely on.
//
// Re-pricing uses epochs instead of per-task writes: each price bucket
// carries an epoch that a reprice bumps; a task entry older than its
// bucket's epoch is implicitly priced at the bucket's current price, so a
// mean move costs one aggregate patch per worker holding the key instead
// of one write per queued task.
//
// The account also maintains, per device kind, an ordered finish-time
// index over (busy, queued count, worker id), so least-busy lookups and
// earliest-executor walks are O(log workers) instead of sweeping every
// worker and rescanning its queue.
//
// Thread-safety: none of its own, by design — the LoadAccount is a plain
// data structure. Since the ThreadExecutor lock split it is shared between
// lock-free poppers/stealers and runtime-locked placement, so every
// instance lives behind a dedicated mutex: QueueScheduler declares its
// account_ GUARDED_BY(account_mutex_) (lock class kLockRankAccount) and
// the thread-safety analysis rejects unlocked access paths (DESIGN.md §9).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "machine/machine.h"

namespace versa::core {

/// Integer charge unit: one picosecond. Small enough that quantizing a
/// profile mean is far below measurement noise, large enough that a
/// multi-hour busy backlog fits an int64 with ten orders of magnitude to
/// spare.
using Ticks = std::int64_t;

constexpr double kSecondsPerTick = 1e-12;

Ticks to_ticks(Duration seconds);
Duration to_seconds(Ticks ticks);

/// Identity of a price: the (task type, version, size group) cell of the
/// profile table whose mean priced a charge.
struct PriceKey {
  TaskTypeId type = kInvalidTaskType;
  VersionId version = kInvalidVersion;
  std::uint64_t group = 0;

  bool operator==(const PriceKey& other) const {
    return type == other.type && version == other.version &&
           group == other.group;
  }
};

struct PriceKeyHash {
  std::size_t operator()(const PriceKey& key) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the three ids
    for (std::uint64_t part :
         {static_cast<std::uint64_t>(key.type),
          static_cast<std::uint64_t>(key.version), key.group}) {
      h = (h ^ part) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

class LoadAccount {
 public:
  /// Index entry ordering: (busy ticks, queued count, worker id). The
  /// queued-count tie-break reproduces the historical least-busy rule
  /// (equal busy -> shorter queue -> lower id).
  using IndexKey = std::tuple<Ticks, std::uint32_t, WorkerId>;
  using KindIndex = std::set<IndexKey>;

  /// Rebuild for `machine`: every worker idle, index populated.
  void reset(const Machine& machine);

  /// Charge `estimate` of queued work for `task` on `worker`. When the
  /// key's price is known (a reprice established it) the bucket price wins
  /// over `estimate`, so concurrent pushes and reprices cannot diverge.
  /// Returns the charge actually applied.
  Duration on_push(TaskId task, const PriceKey& key, WorkerId worker,
                   Duration estimate);

  /// The task left the queue to run: move its effective charge into the
  /// worker's running slot. The slot holds one value and is overwritten
  /// (matching the historical single running estimate, which nested
  /// taskwait inline execution also overwrote). Returns the charge.
  Duration on_pop(TaskId task, WorkerId worker);

  /// Completion or transient failure on `worker`: clear the running slot.
  void on_settle(WorkerId worker);

  /// Work stealing re-homed a queued task from `victim` to `thief`.
  void on_steal(TaskId task, WorkerId victim, WorkerId thief);

  /// The profile mean of `key` changed (nullopt = forgotten, e.g. a
  /// drift-relearn reset): re-price every queued charge of that key. A
  /// forgotten mean reverts each task to its push-time charge.
  void reprice(const PriceKey& key, std::optional<Duration> mean);

  /// Estimated seconds of queued + running work.
  Duration busy(WorkerId worker) const;
  Ticks busy_ticks(WorkerId worker) const;
  Ticks queued_ticks(WorkerId worker) const;
  Ticks running_ticks(WorkerId worker) const;
  std::uint32_t queued_count(WorkerId worker) const;

  /// Workers of `kind` ordered by (busy, queued count, id); empty set for
  /// kinds with no workers.
  const KindIndex& workers_by_busy(DeviceKind kind) const;

  /// Least-busy worker of `kind`, or kInvalidWorker.
  WorkerId least_busy(DeviceKind kind) const;

  std::size_t tracked_tasks() const { return entries_.size(); }

 private:
  struct WorkerShare {
    std::uint32_t count = 0;  ///< queued tasks of this key on the worker
    Ticks charged = 0;        ///< their current (possibly repriced) charge
    Ticks frozen = 0;         ///< sum of their push-time charges
  };
  struct Bucket {
    std::optional<Ticks> price;  ///< current mean price, when known
    std::uint64_t epoch = 0;     ///< bumped by every reprice
    std::unordered_map<WorkerId, WorkerShare> shares;
  };
  struct TaskEntry {
    PriceKey key;
    WorkerId worker = kInvalidWorker;
    Ticks charge = 0;  ///< push-time charge, never rewritten
    std::uint64_t epoch = 0;
  };

  std::vector<Ticks> queued_;
  std::vector<Ticks> running_;
  std::vector<std::uint32_t> counts_;
  std::vector<DeviceKind> kinds_;
  std::array<KindIndex, 2> index_;  ///< one per DeviceKind
  std::unordered_map<PriceKey, Bucket, PriceKeyHash> buckets_;
  std::unordered_map<TaskId, TaskEntry> entries_;

  Ticks effective(const TaskEntry& entry, const Bucket& bucket) const;
  KindIndex& index_of(WorkerId worker);
  IndexKey index_key(WorkerId worker) const;

  /// Apply a busy/count mutation to `worker`, keeping its index position
  /// current.
  template <typename Fn>
  void mutate(WorkerId worker, Fn&& fn);
};

}  // namespace versa::core
