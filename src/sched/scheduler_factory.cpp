#include "sched/scheduler_factory.h"

#include "sched/affinity_scheduler.h"
#include "sched/dep_aware_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/locality_versioning_scheduler.h"
#include "sched/sufferage_scheduler.h"
#include "sched/versioning_scheduler.h"

namespace versa {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const ProfileConfig& profile_config) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "dep-aware") return std::make_unique<DepAwareScheduler>();
  if (name == "affinity") return std::make_unique<AffinityScheduler>();
  if (name == "versioning") {
    return std::make_unique<VersioningScheduler>(profile_config);
  }
  if (name == "versioning-locality") {
    return std::make_unique<LocalityVersioningScheduler>(profile_config);
  }
  if (name == "versioning-fastest") {
    auto scheduler = std::make_unique<VersioningScheduler>(profile_config);
    scheduler->set_fastest_executor_only(true);
    return scheduler;
  }
  if (name == "sufferage") {
    return std::make_unique<SufferageScheduler>(profile_config);
  }
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"fifo", "dep-aware", "affinity", "versioning",
          "versioning-locality", "sufferage"};
}

std::vector<std::string> scheduler_factory_names() {
  return {"fifo",        "dep-aware",           "affinity",
          "versioning",  "versioning-locality", "versioning-fastest",
          "sufferage"};
}

}  // namespace versa
