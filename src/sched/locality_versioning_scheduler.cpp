#include "sched/locality_versioning_scheduler.h"

namespace versa {

LocalityVersioningScheduler::LocalityVersioningScheduler(ProfileConfig config)
    : VersioningScheduler(config) {}

Duration LocalityVersioningScheduler::placement_penalty(
    const Task& task, WorkerId worker) const {
  const SpaceId space = ctx_->machine().worker(worker).space;
  const std::uint64_t missing =
      ctx_->directory().bytes_missing(task.accesses, space);
  if (missing == 0) return 0.0;
  // Estimate with the host->space link when it exists (the dominant path);
  // same-space placements already returned zero above.
  const LinkDesc* link = ctx_->machine().interconnect().find(kHostSpace, space);
  if (link == nullptr) return 0.0;
  return link->latency + static_cast<double>(missing) / link->bandwidth;
}

}  // namespace versa
