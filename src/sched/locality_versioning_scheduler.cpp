#include "sched/locality_versioning_scheduler.h"

namespace versa {

LocalityVersioningScheduler::LocalityVersioningScheduler(ProfileConfig config)
    : VersioningScheduler(config) {}

Duration LocalityVersioningScheduler::placement_penalty(
    const Task& task, WorkerId worker) const {
  // One consistent directory read: transfer_cost prices the missing bytes
  // over the host->space link inside a single epoch-validated snapshot,
  // byte-identical to the historical bytes_missing + link arithmetic.
  return ctx_->directory().transfer_cost(
      task.accesses, ctx_->machine().worker(worker).space);
}

}  // namespace versa
