// TaskVersionSet profiling tables — the data structure of the paper's
// Table I. For every task type, per *data-set-size group*, per version:
// the number of executions and their mean execution time.
//
// Grouping policy: the paper groups by exact data-set size and lists
// range-based grouping as future work (§VII #2); both are implemented and
// selectable. The mean is arithmetic by default with an EMA option
// (footnote 3).
//
// Thread-safety: externally synchronized by the runtime lock
// (kLockRankRuntime). The table is policy-decision state — record() fires
// from task_completed and mean() from placement, both of which the runtime
// serializes — so it carries no lock of its own; the lock-split fast path
// (pop/steal) never touches it. The mean listener it fires is the one
// bridge to locked state: VersioningScheduler's listener re-prices the
// load account under the account mutex (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "profile/drift_detector.h"
#include "task/version_registry.h"

namespace versa {

enum class SizeGrouping : std::uint8_t {
  kExact,  ///< one group per distinct data-set size (the paper's choice)
  kRange,  ///< sizes within a configurable ratio share a group (§VII)
};

struct ProfileConfig {
  /// λ — minimum executions of every version of a group before the group
  /// is considered reliable (user-configurable, paper footnote 4).
  std::uint32_t lambda = 3;
  MeanKind mean_kind = MeanKind::kArithmetic;
  double ema_alpha = 0.25;
  SizeGrouping grouping = SizeGrouping::kExact;
  /// For kRange: sizes s1, s2 share a group iff their log-ratio bucket
  /// matches; 1.25 means roughly ±12 % of data size join one group.
  double range_ratio = 1.25;
  /// Change-point detection on reliable groups: a sustained shift of a
  /// version's observations away from its stored mean resets that version
  /// back into the learning phase (see profile/drift_detector.h).
  DriftConfig drift;
};

class ProfileTable {
 public:
  ProfileTable(const VersionRegistry& registry, ProfileConfig config);

  /// Map a data-set size to its group key under the grouping policy.
  std::uint64_t group_key(std::uint64_t data_set_size) const;

  /// Record one measured execution.
  void record(TaskTypeId type, VersionId version, std::uint64_t data_set_size,
              Duration measured);

  /// Mean execution time of a version for the size's group, if any runs
  /// were recorded.
  std::optional<Duration> mean(TaskTypeId type, VersionId version,
                               std::uint64_t data_set_size) const;

  std::uint64_t count(TaskTypeId type, VersionId version,
                      std::uint64_t data_set_size) const;

  /// Sample variance of the recorded durations (0 below two samples).
  double variance(TaskTypeId type, VersionId version,
                  std::uint64_t data_set_size) const;

  /// Reliable-information test: every registered version of `type` has run
  /// at least λ times for this size's group.
  bool reliable(TaskTypeId type, std::uint64_t data_set_size) const;

  /// Fastest version of the group (lowest mean); nullopt before any runs.
  std::optional<VersionId> fastest_version(TaskTypeId type,
                                           std::uint64_t data_set_size) const;

  /// Inject external information (hints files, §VII #3): seeds the version
  /// entry with a given mean and count.
  void prime(TaskTypeId type, VersionId version, std::uint64_t group_key,
             Duration mean, std::uint64_t count);

  /// Warm start from a persisted store: overwrite the entry's accumulator
  /// state exactly (mean, count, raw second moment), arming the drift
  /// detector against the restored mean when the entry is reliable.
  void restore(TaskTypeId type, VersionId version, std::uint64_t group_key,
               Duration mean, std::uint64_t count, double m2);

  /// Forget one version's history for a group (drift relearning, tests).
  void reset_version(TaskTypeId type, VersionId version,
                     std::uint64_t group_key);

  /// Drift alarms raised so far, in detection order.
  struct DriftEvent {
    TaskTypeId type;
    std::uint64_t group_key;
    VersionId version;
    Duration stale_mean;    ///< the mean the detector was armed against
    Duration observed;      ///< the observation that raised the alarm
    std::uint64_t at_count; ///< samples accumulated when the alarm fired
  };
  const std::vector<DriftEvent>& drift_events() const { return drift_events_; }

  const ProfileConfig& config() const { return config_; }

  /// Observer for mean movement: fired whenever a version's mean for a
  /// group changes — new measurement, hint prime, warm-start restore, or a
  /// reset (drift relearning), in which case the mean is nullopt. The
  /// scheduling core's LoadAccount hooks in here to re-price the busy
  /// charges of already-queued tasks instead of rescanning queues.
  using MeanListener = std::function<void(
      TaskTypeId, VersionId, std::uint64_t group_key, std::optional<Duration>)>;
  void set_mean_listener(MeanListener listener);

  /// Best estimate for a version whose (type, size) group has no mean yet:
  /// the mean of the nearest size group (by group key) that recorded this
  /// version, if any. Used by the busy-accounting fallback chain so
  /// unknown-mean tasks do not get charged as free. Distance is the
  /// absolute group-key difference; when two groups are exactly
  /// equidistant (a query at the midpoint), the SMALLER key wins — pinned
  /// by ProfileTableNearestGroup tests, so persisted-profile consumers can
  /// rely on it staying deterministic.
  std::optional<Duration> nearest_group_mean(TaskTypeId type, VersionId version,
                                             std::uint64_t group_key) const;

  /// Table I-style ASCII dump.
  std::string dump() const;

  /// Iteration hook for the hints writer: (type, group_key, version,
  /// mean, count) per entry.
  struct Entry {
    TaskTypeId type;
    std::uint64_t group_key;
    VersionId version;
    Duration mean;
    std::uint64_t count;
    double m2;  ///< raw second moment (see RunningMean::m2)
  };
  std::vector<Entry> entries() const;

  std::size_t group_count() const;

 private:
  struct VersionStats {
    RunningMean mean;
    CusumDetector detector;
    explicit VersionStats(const ProfileConfig& cfg)
        : mean(cfg.mean_kind, cfg.ema_alpha), detector(cfg.drift) {}
  };
  using GroupKey = std::pair<TaskTypeId, std::uint64_t>;
  struct Group {
    std::map<VersionId, VersionStats> per_version;
  };

  const VersionRegistry& registry_;
  ProfileConfig config_;
  std::map<GroupKey, Group> groups_;
  std::vector<DriftEvent> drift_events_;
  MeanListener mean_listener_;

  void notify_mean(TaskTypeId type, VersionId version,
                   std::uint64_t group_key) const;

  const VersionStats* find(TaskTypeId type, VersionId version,
                           std::uint64_t data_set_size) const;
};

}  // namespace versa
