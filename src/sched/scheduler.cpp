#include "sched/scheduler.h"

#include "common/check.h"

namespace versa {

void Scheduler::attach(SchedulerContext& ctx) { ctx_ = &ctx; }

TaskId Scheduler::try_pop_queued(WorkerId) { return kInvalidTask; }

void Scheduler::task_completed(Task&, WorkerId, Duration) {}

void Scheduler::task_failed(Task&, WorkerId) {}

Duration Scheduler::estimated_busy(WorkerId) const { return 0.0; }

const TaskVersion& Scheduler::main_version_of(const Task& task) const {
  VERSA_CHECK(ctx_ != nullptr);
  return ctx_->registry().version(ctx_->registry().main_version(task.type));
}

std::vector<WorkerId> Scheduler::compatible_workers(
    const TaskVersion& version) const {
  VERSA_CHECK(ctx_ != nullptr);
  std::vector<WorkerId> out;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.kind == version.device) out.push_back(w.id);
  }
  return out;
}

void QueueScheduler::attach(SchedulerContext& ctx) {
  Scheduler::attach(ctx);
  queues_.reset(ctx.machine().worker_count());
  pending_.store(0, std::memory_order_relaxed);
  versa::LockGuard lock(account_mutex_);
  account_.reset(ctx.machine());
  pending_reprices_.clear();
  reprice_requests_ = 0;
  reprice_flushes_ = 0;
}

void QueueScheduler::defer_reprice(const core::PriceKey& key,
                                   std::optional<Duration> mean) {
  versa::LockGuard lock(account_mutex_);
  pending_reprices_[key] = mean;  // later requests for the key coalesce
  ++reprice_requests_;
}

void QueueScheduler::flush_deferred_reprices() const {
  for (const auto& [key, mean] : pending_reprices_) {
    // Application order across distinct keys is immaterial: charges are
    // integer tick sums per key and the index depends only on the totals.
    account_.reprice(key, mean);
    ++reprice_flushes_;
  }
  pending_reprices_.clear();
}

void QueueScheduler::flush_deferred_reprice(const core::PriceKey& key) const {
  const auto it = pending_reprices_.find(key);
  if (it == pending_reprices_.end()) return;
  account_.reprice(key, it->second);
  ++reprice_flushes_;
  pending_reprices_.erase(it);
}

std::uint64_t QueueScheduler::reprice_requests() const {
  versa::LockGuard lock(account_mutex_);
  return reprice_requests_;
}

std::uint64_t QueueScheduler::reprice_flushes() const {
  versa::LockGuard lock(account_mutex_);
  return reprice_flushes_;
}

std::uint64_t QueueScheduler::buffer_push_batches() const {
  return queues_.batch_appends();
}

std::uint64_t QueueScheduler::price_group(const Task& task) const {
  return task.data_set_size;
}

void QueueScheduler::push_to_worker(Task& task, VersionId version,
                                    WorkerId worker, const PushInfo& info) {
  VERSA_CHECK(ctx_ != nullptr);
  VERSA_CHECK(worker < queues_.worker_count());
  const TaskVersion& v = ctx_->registry().version(version);
  VERSA_CHECK_MSG(v.device == ctx_->machine().worker(worker).kind,
                  "version/worker device mismatch");
  VERSA_CHECK(task.state == TaskState::kReady);
  task.chosen_version = version;
  task.assigned_worker = worker;
  task.state = TaskState::kQueued;
  const std::uint64_t group = price_group(task);
  // Charge the account; freeze the applied charge (the current profile
  // mean when known, else the caller's estimate) so a later mean-forgotten
  // re-price — and the rescan reference — can still price this task.
  // Deferred re-prices are flushed first so the charge (bucket price wins
  // over the estimate) matches what an immediate-reprice scheduler would
  // have applied.
  Duration busy_before;
  {
    versa::LockGuard lock(account_mutex_);
    flush_deferred_reprices();
    busy_before = account_.busy(worker);
    task.scheduler_estimate =
        account_.on_push(task.id, core::PriceKey{task.type, version, group},
                         worker, info.estimate);
  }
  // Producer side of the lock split: append to the shard's submission
  // buffer (kLockRankSubmit only). The entry becomes poppable when the
  // shard is drained — at the round boundary (ready_batch_done) or by the
  // owner/thief in try_pop_queued; every task field above is written
  // before this point, and the submit mutex pairs the writes with the
  // draining thread's reads.
  queues_.buffer_push(
      worker, core::QueueEntry{task.id, task.type, version, task.priority,
                               task.scheduler_estimate, group, task.tenant});
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, version, worker, busy_before,
        task.scheduler_estimate, info.penalty, info.candidates,
        info.learning ? core::TraceEventKind::kLearningPlacement
                      : core::TraceEventKind::kPlacement,
        task.tenant});
  }
  ctx_->task_assigned(task.id, worker);
}

TaskId QueueScheduler::pop_task(WorkerId worker) {
  // The queue path never needs the runtime lock; under it this is simply
  // the same dequeue, serialized.
  return try_pop_queued(worker);
}

TaskId QueueScheduler::try_pop_queued(WorkerId worker) {
  VERSA_CHECK(worker < queues_.worker_count());
  // Publish this shard's buffered placements first (submit(17) then
  // queue(30); the account lock is not held here, so the rank order is
  // respected).
  queues_.drain(worker);
  if (std::optional<core::QueueEntry> entry = queues_.pop_front(worker)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    versa::LockGuard lock(account_mutex_);
    // on_pop freezes the bucket price into the running slot, so the
    // popped key's deferred re-price (if any) must land first.
    flush_deferred_reprice(
        core::PriceKey{entry->type, entry->version, entry->group});
    account_.on_pop(entry->id, worker);
    return entry->id;
  }
  if (stealing_) return steal_for(worker);
  return kInvalidTask;
}

void QueueScheduler::ready_batch_begin() {
  // Open the staging window: buffer_push calls until ready_batch_done
  // accumulate in producer-private runs instead of taking the submit
  // mutex per task. Runtime-lock serialized (the batch brackets come
  // from release_ready / port_failed).
  queues_.begin_batch();
}

void QueueScheduler::ready_batch_done() {
  // Round boundary: apply the re-prices this round's completions
  // coalesced, publish the staged runs (one submit-mutex acquisition per
  // non-empty worker run), then drain the buffers into the shards. The
  // account lock (20) is released before the queues take submit (16).
  {
    versa::LockGuard lock(account_mutex_);
    flush_deferred_reprices();
  }
  queues_.end_batch();
  queues_.drain_all();
}

TaskId QueueScheduler::steal_for(WorkerId thief) {
  const DeviceKind kind = ctx_->machine().worker(thief).kind;
  // Steal from the back of the most loaded queue of a same-kind worker:
  // the victim keeps its locality-friendly head-of-queue work. Victim
  // selection reads only the atomic length mirrors.
  WorkerId victim = kInvalidWorker;
  std::size_t best = 0;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.id == thief || w.kind != kind) continue;
    const std::size_t len = queues_.length(w.id);
    if (len > best) {
      best = len;
      victim = w.id;
    }
  }
  if (victim == kInvalidWorker || best == 0) return kInvalidTask;
  // The victim's buffer may hold the work its length advertised — publish
  // it so buffered placements are stealable (parity with the direct-push
  // path; the account lock is not held here).
  queues_.drain(victim);
  const std::optional<core::QueueEntry> entry = queues_.steal_back(victim);
  if (!entry) return kInvalidTask;  // raced away under a concurrent pop
  pending_.fetch_sub(1, std::memory_order_relaxed);
  Duration victim_busy;
  {
    versa::LockGuard lock(account_mutex_);
    flush_deferred_reprice(
        core::PriceKey{entry->type, entry->version, entry->group});
    account_.on_steal(entry->id, victim, thief);
    account_.on_pop(entry->id, thief);
    victim_busy = account_.busy(victim);
  }
  // Task::assigned_worker is re-homed by the executor under the runtime
  // lock when the stolen task starts (this path cannot touch the graph).
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), entry->id, entry->type, entry->version, thief,
        victim_busy, entry->estimate, 0.0, 0, core::TraceEventKind::kSteal,
        entry->tenant});
  }
  return entry->id;
}

void QueueScheduler::task_completed(Task& task, WorkerId worker,
                                    Duration measured) {
  Duration busy_after;
  {
    versa::LockGuard lock(account_mutex_);
    account_.on_settle(worker);
    busy_after = account_.busy(worker);
  }
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        busy_after, measured, 0.0, 0, core::TraceEventKind::kComplete,
        task.tenant});
  }
}

void QueueScheduler::task_failed(Task& task, WorkerId worker) {
  Duration busy_after;
  {
    versa::LockGuard lock(account_mutex_);
    account_.on_settle(worker);
    busy_after = account_.busy(worker);
  }
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        busy_after, 0.0, 0.0, 0, core::TraceEventKind::kFailure, task.tenant});
  }
}

Duration QueueScheduler::estimated_busy(WorkerId worker) const {
  versa::LockGuard lock(account_mutex_);
  flush_deferred_reprices();
  return account_.busy(worker);
}

bool QueueScheduler::has_pending() const {
  return pending_.load(std::memory_order_relaxed) > 0;
}

std::size_t QueueScheduler::queue_length(WorkerId worker) const {
  return queues_.length(worker);
}

std::vector<TaskId> QueueScheduler::queued_tasks(WorkerId worker) const {
  return queues_.snapshot(worker);
}

WorkerId QueueScheduler::least_loaded(
    const std::vector<WorkerId>& candidates) const {
  VERSA_CHECK_MSG(!candidates.empty(), "no compatible worker for task");
  WorkerId best = candidates.front();
  std::size_t best_len = queues_.length(best);
  for (WorkerId w : candidates) {
    const std::size_t len = queues_.length(w);
    if (len < best_len) {
      best = w;
      best_len = len;
    }
  }
  return best;
}

}  // namespace versa
