#include "sched/scheduler.h"

#include "common/check.h"

namespace versa {

void Scheduler::attach(SchedulerContext& ctx) { ctx_ = &ctx; }

void Scheduler::task_completed(Task&, WorkerId, Duration) {}

void Scheduler::task_failed(Task&, WorkerId) {}

Duration Scheduler::estimated_busy(WorkerId) const { return 0.0; }

const TaskVersion& Scheduler::main_version_of(const Task& task) const {
  VERSA_CHECK(ctx_ != nullptr);
  return ctx_->registry().version(ctx_->registry().main_version(task.type));
}

std::vector<WorkerId> Scheduler::compatible_workers(
    const TaskVersion& version) const {
  VERSA_CHECK(ctx_ != nullptr);
  std::vector<WorkerId> out;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.kind == version.device) out.push_back(w.id);
  }
  return out;
}

void QueueScheduler::attach(SchedulerContext& ctx) {
  Scheduler::attach(ctx);
  queues_.assign(ctx.machine().worker_count(), {});
  pending_ = 0;
  account_.reset(ctx.machine());
}

std::uint64_t QueueScheduler::price_group(const Task& task) const {
  return task.data_set_size;
}

void QueueScheduler::push_to_worker(Task& task, VersionId version,
                                    WorkerId worker, const PushInfo& info) {
  VERSA_CHECK(ctx_ != nullptr);
  VERSA_CHECK(worker < queues_.size());
  const TaskVersion& v = ctx_->registry().version(version);
  VERSA_CHECK_MSG(v.device == ctx_->machine().worker(worker).kind,
                  "version/worker device mismatch");
  VERSA_CHECK(task.state == TaskState::kReady);
  const Duration busy_before = account_.busy(worker);
  task.chosen_version = version;
  task.assigned_worker = worker;
  task.state = TaskState::kQueued;
  // Charge the account; freeze the applied charge (the current profile
  // mean when known, else the caller's estimate) so a later mean-forgotten
  // re-price — and the rescan reference — can still price this task.
  task.scheduler_estimate = account_.on_push(
      task.id, core::PriceKey{task.type, version, price_group(task)}, worker,
      info.estimate);
  // Priority insertion, stable within a priority level: walk back past
  // queued tasks with strictly lower priority.
  std::deque<TaskId>& queue = queues_[worker];
  auto it = queue.end();
  while (it != queue.begin() &&
         ctx_->graph().task(*(it - 1)).priority < task.priority) {
    --it;
  }
  queue.insert(it, task.id);
  ++pending_;
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, version, worker, busy_before,
        task.scheduler_estimate, info.penalty, info.candidates,
        info.learning ? core::TraceEventKind::kLearningPlacement
                      : core::TraceEventKind::kPlacement});
  }
  ctx_->task_assigned(task.id, worker);
}

TaskId QueueScheduler::pop_task(WorkerId worker) {
  VERSA_CHECK(worker < queues_.size());
  if (!queues_[worker].empty()) {
    const TaskId id = queues_[worker].front();
    queues_[worker].pop_front();
    --pending_;
    account_.on_pop(id, worker);
    return id;
  }
  if (stealing_) return steal_for(worker);
  return kInvalidTask;
}

TaskId QueueScheduler::steal_for(WorkerId thief) {
  const DeviceKind kind = ctx_->machine().worker(thief).kind;
  // Steal from the back of the most loaded queue of a same-kind worker:
  // the victim keeps its locality-friendly head-of-queue work.
  WorkerId victim = kInvalidWorker;
  std::size_t best = 0;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.id == thief || w.kind != kind) continue;
    if (queues_[w.id].size() > best) {
      best = queues_[w.id].size();
      victim = w.id;
    }
  }
  if (victim == kInvalidWorker || best == 0) return kInvalidTask;
  const TaskId id = queues_[victim].back();
  queues_[victim].pop_back();
  --pending_;
  // Re-home the task so the executor acquires data for the thief's space.
  Task& task = ctx_->graph().task(id);
  task.assigned_worker = thief;
  account_.on_steal(id, victim, thief);
  account_.on_pop(id, thief);
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), id, task.type, task.chosen_version, thief,
        account_.busy(victim), task.scheduler_estimate, 0.0, 0,
        core::TraceEventKind::kSteal});
  }
  return id;
}

void QueueScheduler::task_completed(Task& task, WorkerId worker,
                                    Duration measured) {
  account_.on_settle(worker);
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        account_.busy(worker), measured, 0.0, 0,
        core::TraceEventKind::kComplete});
  }
}

void QueueScheduler::task_failed(Task& task, WorkerId worker) {
  account_.on_settle(worker);
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        account_.busy(worker), 0.0, 0.0, 0, core::TraceEventKind::kFailure});
  }
}

Duration QueueScheduler::estimated_busy(WorkerId worker) const {
  return account_.busy(worker);
}

bool QueueScheduler::has_pending() const { return pending_ > 0; }

std::size_t QueueScheduler::queue_length(WorkerId worker) const {
  VERSA_CHECK(worker < queues_.size());
  return queues_[worker].size();
}

const std::deque<TaskId>& QueueScheduler::queue(WorkerId worker) const {
  VERSA_CHECK(worker < queues_.size());
  return queues_[worker];
}

WorkerId QueueScheduler::least_loaded(
    const std::vector<WorkerId>& candidates) const {
  VERSA_CHECK_MSG(!candidates.empty(), "no compatible worker for task");
  WorkerId best = candidates.front();
  for (WorkerId w : candidates) {
    if (queues_[w].size() < queues_[best].size()) best = w;
  }
  return best;
}

}  // namespace versa
