#include "sched/scheduler.h"

#include "common/check.h"

namespace versa {

void Scheduler::attach(SchedulerContext& ctx) { ctx_ = &ctx; }

TaskId Scheduler::try_pop_queued(WorkerId) { return kInvalidTask; }

void Scheduler::task_completed(Task&, WorkerId, Duration) {}

void Scheduler::task_failed(Task&, WorkerId) {}

Duration Scheduler::estimated_busy(WorkerId) const { return 0.0; }

const TaskVersion& Scheduler::main_version_of(const Task& task) const {
  VERSA_CHECK(ctx_ != nullptr);
  return ctx_->registry().version(ctx_->registry().main_version(task.type));
}

std::vector<WorkerId> Scheduler::compatible_workers(
    const TaskVersion& version) const {
  VERSA_CHECK(ctx_ != nullptr);
  std::vector<WorkerId> out;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.kind == version.device) out.push_back(w.id);
  }
  return out;
}

void QueueScheduler::attach(SchedulerContext& ctx) {
  Scheduler::attach(ctx);
  queues_.reset(ctx.machine().worker_count());
  pending_.store(0, std::memory_order_relaxed);
  versa::LockGuard lock(account_mutex_);
  account_.reset(ctx.machine());
}

std::uint64_t QueueScheduler::price_group(const Task& task) const {
  return task.data_set_size;
}

void QueueScheduler::push_to_worker(Task& task, VersionId version,
                                    WorkerId worker, const PushInfo& info) {
  VERSA_CHECK(ctx_ != nullptr);
  VERSA_CHECK(worker < queues_.worker_count());
  const TaskVersion& v = ctx_->registry().version(version);
  VERSA_CHECK_MSG(v.device == ctx_->machine().worker(worker).kind,
                  "version/worker device mismatch");
  VERSA_CHECK(task.state == TaskState::kReady);
  task.chosen_version = version;
  task.assigned_worker = worker;
  task.state = TaskState::kQueued;
  // Charge the account; freeze the applied charge (the current profile
  // mean when known, else the caller's estimate) so a later mean-forgotten
  // re-price — and the rescan reference — can still price this task.
  Duration busy_before;
  {
    versa::LockGuard lock(account_mutex_);
    busy_before = account_.busy(worker);
    task.scheduler_estimate = account_.on_push(
        task.id, core::PriceKey{task.type, version, price_group(task)},
        worker, info.estimate);
  }
  // The push makes the task visible to concurrent lock-free poppers; every
  // task field above is written before this point, and the shard mutex
  // pairs the writes with the popping thread's reads.
  queues_.push(worker, core::QueueEntry{task.id, task.type, version,
                                        task.priority,
                                        task.scheduler_estimate});
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, version, worker, busy_before,
        task.scheduler_estimate, info.penalty, info.candidates,
        info.learning ? core::TraceEventKind::kLearningPlacement
                      : core::TraceEventKind::kPlacement});
  }
  ctx_->task_assigned(task.id, worker);
}

TaskId QueueScheduler::pop_task(WorkerId worker) {
  // The queue path never needs the runtime lock; under it this is simply
  // the same dequeue, serialized.
  return try_pop_queued(worker);
}

TaskId QueueScheduler::try_pop_queued(WorkerId worker) {
  VERSA_CHECK(worker < queues_.worker_count());
  if (std::optional<core::QueueEntry> entry = queues_.pop_front(worker)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    versa::LockGuard lock(account_mutex_);
    account_.on_pop(entry->id, worker);
    return entry->id;
  }
  if (stealing_) return steal_for(worker);
  return kInvalidTask;
}

TaskId QueueScheduler::steal_for(WorkerId thief) {
  const DeviceKind kind = ctx_->machine().worker(thief).kind;
  // Steal from the back of the most loaded queue of a same-kind worker:
  // the victim keeps its locality-friendly head-of-queue work. Victim
  // selection reads only the atomic length mirrors.
  WorkerId victim = kInvalidWorker;
  std::size_t best = 0;
  for (const WorkerDesc& w : ctx_->machine().workers()) {
    if (w.id == thief || w.kind != kind) continue;
    const std::size_t len = queues_.length(w.id);
    if (len > best) {
      best = len;
      victim = w.id;
    }
  }
  if (victim == kInvalidWorker || best == 0) return kInvalidTask;
  const std::optional<core::QueueEntry> entry = queues_.steal_back(victim);
  if (!entry) return kInvalidTask;  // raced away under a concurrent pop
  pending_.fetch_sub(1, std::memory_order_relaxed);
  Duration victim_busy;
  {
    versa::LockGuard lock(account_mutex_);
    account_.on_steal(entry->id, victim, thief);
    account_.on_pop(entry->id, thief);
    victim_busy = account_.busy(victim);
  }
  // Task::assigned_worker is re-homed by the executor under the runtime
  // lock when the stolen task starts (this path cannot touch the graph).
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), entry->id, entry->type, entry->version, thief,
        victim_busy, entry->estimate, 0.0, 0, core::TraceEventKind::kSteal});
  }
  return entry->id;
}

void QueueScheduler::task_completed(Task& task, WorkerId worker,
                                    Duration measured) {
  Duration busy_after;
  {
    versa::LockGuard lock(account_mutex_);
    account_.on_settle(worker);
    busy_after = account_.busy(worker);
  }
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        busy_after, measured, 0.0, 0, core::TraceEventKind::kComplete});
  }
}

void QueueScheduler::task_failed(Task& task, WorkerId worker) {
  Duration busy_after;
  {
    versa::LockGuard lock(account_mutex_);
    account_.on_settle(worker);
    busy_after = account_.busy(worker);
  }
  if (trace_.enabled()) {
    trace_.record(core::TraceEvent{
        ctx_->now(), task.id, task.type, task.chosen_version, worker,
        busy_after, 0.0, 0.0, 0, core::TraceEventKind::kFailure});
  }
}

Duration QueueScheduler::estimated_busy(WorkerId worker) const {
  versa::LockGuard lock(account_mutex_);
  return account_.busy(worker);
}

bool QueueScheduler::has_pending() const {
  return pending_.load(std::memory_order_relaxed) > 0;
}

std::size_t QueueScheduler::queue_length(WorkerId worker) const {
  return queues_.length(worker);
}

std::vector<TaskId> QueueScheduler::queued_tasks(WorkerId worker) const {
  return queues_.snapshot(worker);
}

WorkerId QueueScheduler::least_loaded(
    const std::vector<WorkerId>& candidates) const {
  VERSA_CHECK_MSG(!candidates.empty(), "no compatible worker for task");
  WorkerId best = candidates.front();
  std::size_t best_len = queues_.length(best);
  for (WorkerId w : candidates) {
    const std::size_t len = queues_.length(w);
    if (len < best_len) {
      best = w;
      best_len = len;
    }
  }
  return best;
}

}  // namespace versa
