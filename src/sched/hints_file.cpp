#include "sched/hints_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/string_util.h"

namespace versa {

std::string serialize_hints(const VersionRegistry& registry,
                            const ProfileTable& table) {
  std::ostringstream out;
  out << "# versa hints v1\n";
  for (const ProfileTable::Entry& entry : table.entries()) {
    if (entry.count == 0) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "hint %s %s %llu %.9e %llu\n",
                  registry.task_name(entry.type).c_str(),
                  registry.version(entry.version).name.c_str(),
                  static_cast<unsigned long long>(entry.group_key), entry.mean,
                  static_cast<unsigned long long>(entry.count));
    out << line;
  }
  return out.str();
}

int parse_hints(std::string_view text, const VersionRegistry& registry,
                ProfileTable& table) {
  int applied = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::istringstream in{std::string(line)};
    std::string keyword, task_name, version_name;
    unsigned long long group_key = 0, count = 0;
    double mean = 0.0;
    in >> keyword >> task_name >> version_name >> group_key >> mean >> count;
    if (in.fail() || keyword != "hint") return -1;
    if (mean < 0.0 || count == 0) return -1;

    const TaskTypeId type = registry.find_task(task_name);
    if (type == kInvalidTaskType) {
      VERSA_LOG(kWarn) << "hints: unknown task '" << task_name << "' skipped";
      continue;
    }
    const VersionId version = registry.find_version(type, version_name);
    if (version == kInvalidVersion) {
      VERSA_LOG(kWarn) << "hints: unknown version '" << version_name
                       << "' of task '" << task_name << "' skipped";
      continue;
    }
    // Clamp the replayed count to λ: enough to mark the group reliable
    // without letting a long-dead history dominate fresh measurements.
    const std::uint64_t primed_count =
        std::min<std::uint64_t>(count, table.config().lambda);
    table.prime(type, version, group_key, mean, primed_count);
    ++applied;
  }
  return applied;
}

bool save_hints(const std::string& path, const VersionRegistry& registry,
                const ProfileTable& table) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_hints(registry, table);
  return static_cast<bool>(out);
}

int load_hints(const std::string& path, const VersionRegistry& registry,
               ProfileTable& table) {
  std::ifstream in(path);
  if (!in) return -1;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_hints(buffer.str(), registry, table);
}

}  // namespace versa
