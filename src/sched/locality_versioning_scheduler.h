// Locality-aware versioning scheduler — the paper's first future-work item
// (§VII): "provide the versioning scheduler with data locality information
// in order to further improve the performance of applications."
//
// Identical to VersioningScheduler except that the earliest-executor
// objective also charges an estimated transfer time for the bytes the
// candidate worker's memory space is missing, so placements that avoid
// copies win ties (and sometimes beat slightly faster-but-remote workers).
#pragma once

#include "sched/versioning_scheduler.h"

namespace versa {

class LocalityVersioningScheduler final : public VersioningScheduler {
 public:
  explicit LocalityVersioningScheduler(ProfileConfig config = {});

  const char* name() const override { return "versioning-locality"; }

 protected:
  Duration placement_penalty(const Task& task, WorkerId worker) const override;

  /// The penalty prices directory residency, so the earliest-executor walk
  /// re-validates against DataDirectory::shard_epoch() over the task's shards.
  bool placement_penalty_uses_directory() const override { return true; }
};

}  // namespace versa
