// Sufferage scheduler — a classic heterogeneous batch-mapping heuristic
// (Maheswaran et al.), included as a related-work comparison point: the
// paper's §VI discusses model-driven runtimes (MDR/SLAC, Qilin) whose
// mapping decisions weigh more than greedy earliest-completion. Sufferage
// assigns, among all currently unmapped ready tasks, the one that would
// *suffer* most from not getting its best worker (largest gap between its
// best and second-best completion time), then repeats.
//
// Profiling reuses the versioning infrastructure (TaskVersionSet tables,
// λ learning, data-set-size groups); only the reliable-phase mapping rule
// differs: batch sufferage over the ready pool instead of per-task
// earliest executor.
#pragma once

#include "sched/versioning_scheduler.h"

namespace versa {

class SufferageScheduler final : public VersioningScheduler {
 public:
  explicit SufferageScheduler(ProfileConfig config = {});

  const char* name() const override { return "sufferage"; }
  void task_ready(Task& task) override;
  void ready_batch_done() override;
  void task_completed(Task& task, WorkerId worker, Duration measured) override;
  bool has_pending() const override {
    return !reliable_pool_.empty() || VersioningScheduler::has_pending();
  }

 private:
  /// Map pooled reliable tasks in sufferage order; learning-phase tasks
  /// flow through the base-class machinery untouched.
  void drain_reliable_pool();

  std::vector<TaskId> reliable_pool_;

  struct Placement {
    VersionId version = kInvalidVersion;
    WorkerId worker = kInvalidWorker;
    Duration best = 0.0;
    Duration second = 0.0;
    bool feasible = false;
  };
  Placement evaluate(const Task& task) const;
};

}  // namespace versa
