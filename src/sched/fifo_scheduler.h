// Breadth-first baseline: one central FIFO of ready tasks; any compatible
// idle worker takes the oldest one. No locality, no versioning (main
// implementation only) — the simplest correct policy, used as a control in
// tests and ablations.
#pragma once

#include <deque>

#include "sched/scheduler.h"

namespace versa {

class FifoScheduler final : public Scheduler {
 public:
  const char* name() const override { return "fifo"; }
  void attach(SchedulerContext& ctx) override;
  void task_ready(Task& task) override;
  TaskId pop_task(WorkerId worker) override;
  bool has_pending() const override;

 private:
  std::deque<TaskId> ready_;
};

}  // namespace versa
