#include "sched/sufferage_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace versa {

SufferageScheduler::SufferageScheduler(ProfileConfig config)
    : VersioningScheduler(config) {}

SufferageScheduler::Placement SufferageScheduler::evaluate(
    const Task& task) const {
  Placement placement;
  Duration best = kTimeInfinity;
  Duration second = kTimeInfinity;
  // The index walk reads the account under its lock; the caller pushes
  // (re-acquiring it) only after this evaluation returns. Deferred
  // re-prices are applied first so the walk prices with current means.
  versa::LockGuard lock(account_mutex_);
  flush_deferred_reprices();
  for (VersionId v : ctx_->registry().versions(task.type)) {
    const TaskVersion& version = ctx_->registry().version(v);
    const auto mean = profile().mean(task.type, v, task.data_set_size);
    if (!mean) continue;
    // Finish-time index walk in increasing busy order: once busy + mean
    // cannot improve the second-best finish it cannot improve anything
    // (second >= best), so the rest of the kind is pruned.
    for (const core::LoadAccount::IndexKey& key :
         account_.workers_by_busy(version.device)) {
      const Duration finish = core::to_seconds(std::get<0>(key)) + *mean;
      if (finish >= second) break;
      if (finish < best) {
        second = best;
        best = finish;
        placement.version = v;
        placement.worker = std::get<2>(key);
      } else {
        second = finish;
      }
    }
  }
  placement.best = best;
  placement.second = second == kTimeInfinity ? best : second;
  placement.feasible = placement.worker != kInvalidWorker;
  return placement;
}

void SufferageScheduler::drain_reliable_pool() {
  while (!reliable_pool_.empty()) {
    // Pick the pooled task with the largest sufferage (second - best).
    std::size_t chosen = 0;
    Placement chosen_placement;
    Duration chosen_sufferage = -1.0;
    for (std::size_t i = 0; i < reliable_pool_.size(); ++i) {
      const Task& task = ctx_->graph().task(reliable_pool_[i]);
      const Placement placement = evaluate(task);
      VERSA_CHECK_MSG(placement.feasible,
                      "no runnable version for task on this machine");
      const Duration sufferage = placement.second - placement.best;
      if (sufferage > chosen_sufferage) {
        chosen_sufferage = sufferage;
        chosen = i;
        chosen_placement = placement;
      }
    }
    Task& task = ctx_->graph().task(reliable_pool_[chosen]);
    reliable_pool_.erase(reliable_pool_.begin() +
                         static_cast<std::ptrdiff_t>(chosen));
    PushInfo info;
    info.estimate = estimate_for(task, chosen_placement.version);
    push_to_worker(task, chosen_placement.version, chosen_placement.worker,
                   info);
  }
}

void SufferageScheduler::task_ready(Task& task) {
  if (reliable_runnable(task.type, task.data_set_size)) {
    // Defer to the end of the ready wave: sufferage is a batch decision.
    reliable_pool_.push_back(task.id);
  } else {
    VersioningScheduler::task_ready(task);  // learning machinery
  }
}

void SufferageScheduler::ready_batch_done() {
  // Map the batch first, then let the base class run the round boundary
  // (flush coalesced re-prices, publish the buffered placements).
  drain_reliable_pool();
  VersioningScheduler::ready_batch_done();
}

void SufferageScheduler::task_completed(Task& task, WorkerId worker,
                                        Duration measured) {
  VersioningScheduler::task_completed(task, worker, measured);
  drain_reliable_pool();
}

}  // namespace versa
