#include "task/dependency_analyzer.h"

#include <algorithm>

#include "common/check.h"

namespace versa {

void DependencyAnalyzer::split_at(IntervalMap& map, std::uint64_t pos) {
  auto it = map.upper_bound(pos);
  if (it == map.begin()) return;
  --it;
  const std::uint64_t start = it->first;
  Interval& node = it->second;
  if (start == pos || node.end <= pos) return;
  // [start, end) contains pos strictly inside: split into
  // [start, pos) + [pos, end).
  Interval right = node;  // copies writer/readers
  node.end = pos;
  map.emplace(pos, std::move(right));
}

// The dynamic lock set (one mutex per shard the access list touches, in
// ascending shard-index order) is beyond what the static analysis can
// follow; the runtime rank checker still validates every acquisition.
void DependencyAnalyzer::add_task(TaskId task, const AccessList& accesses,
                                  std::vector<TaskId>& preds)
    VERSA_NO_THREAD_SAFETY_ANALYSIS {
  // Collect the shards this task touches and lock them in ascending shard
  // index. All shard mutexes share the (reentrant) analyzer.shard class,
  // and every thread uses the same order, so the nesting cannot deadlock.
  std::array<bool, kShardCount> touched{};
  for (const Access& access : accesses) {
    VERSA_CHECK_MSG(access.length > 0,
                    "access length must be resolved before analysis");
    touched[access.region % kShardCount] = true;
  }
  for (std::size_t i = 0; i < kShardCount; ++i) {
    if (touched[i]) shards_[i].mutex.lock();
  }

  const std::size_t preds_begin = preds.size();
  for (const Access& access : accesses) {
    const std::uint64_t lo = access.offset;
    const std::uint64_t hi = access.offset + access.length;
    IntervalMap& map = shard_of(access.region).regions[access.region];
    split_at(map, lo);
    split_at(map, hi);

    // Walk every interval overlapping [lo, hi); after the splits they are
    // fully contained in the range.
    auto it = map.lower_bound(lo);
    std::uint64_t cursor = lo;
    while (cursor < hi) {
      if (it == map.end() || it->first >= hi) {
        // Gap [cursor, hi): never touched before. Create fresh interval.
        Interval fresh;
        fresh.end = hi;
        if (writes(access.mode)) {
          fresh.last_writer = task;
        } else {
          fresh.readers.push_back(task);
        }
        it = map.emplace(cursor, std::move(fresh)).first;
        ++it;
        cursor = hi;
        break;
      }
      if (it->first > cursor) {
        // Gap [cursor, it->first): create interval for the gap only.
        Interval fresh;
        fresh.end = it->first;
        if (writes(access.mode)) {
          fresh.last_writer = task;
        } else {
          fresh.readers.push_back(task);
        }
        map.emplace(cursor, std::move(fresh));
        cursor = it->first;
        continue;
      }
      // Existing interval starting at cursor, contained in [lo, hi).
      Interval& node = it->second;
      VERSA_DCHECK(node.end <= hi);
      if (reads(access.mode) && node.last_writer != kInvalidTask &&
          node.last_writer != task) {
        preds.push_back(node.last_writer);  // RAW
      }
      if (writes(access.mode)) {
        if (node.last_writer != kInvalidTask && node.last_writer != task) {
          preds.push_back(node.last_writer);  // WAW
        }
        for (TaskId reader : node.readers) {
          if (reader != task) preds.push_back(reader);  // WAR
        }
        node.last_writer = task;
        node.readers.clear();
      } else {
        if (std::find(node.readers.begin(), node.readers.end(), task) ==
            node.readers.end()) {
          node.readers.push_back(task);
        }
      }
      cursor = node.end;
      ++it;
    }
  }
  // Deduplicate the predecessors contributed by this call.
  std::sort(preds.begin() + preds_begin, preds.end());
  preds.erase(std::unique(preds.begin() + preds_begin, preds.end()),
              preds.end());

  for (std::size_t i = kShardCount; i-- > 0;) {
    if (touched[i]) shards_[i].mutex.unlock();
  }
}

void DependencyAnalyzer::clear_region(RegionId region) {
  Shard& shard = shard_of(region);
  versa::LockGuard lock(shard.mutex);
  shard.regions.erase(region);
}

void DependencyAnalyzer::reset() {
  for (Shard& shard : shards_) {
    versa::LockGuard lock(shard.mutex);
    shard.regions.clear();
  }
}

std::size_t DependencyAnalyzer::interval_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    versa::LockGuard lock(shard.mutex);
    for (const auto& [region, map] : shard.regions) {
      total += map.size();
    }
  }
  return total;
}

}  // namespace versa
