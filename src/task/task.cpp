#include "task/task.h"

#include "common/check.h"
#include "data/directory.h"

namespace versa {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kCreated:
      return "created";
    case TaskState::kReady:
      return "ready";
    case TaskState::kQueued:
      return "queued";
    case TaskState::kRunning:
      return "running";
    case TaskState::kFinished:
      return "finished";
  }
  return "?";
}

TaskContext::TaskContext(const AccessList& accesses,
                         const DataDirectory& directory, WorkerId worker,
                         DeviceKind device)
    : worker_(worker), device_(device) {
  args_.reserve(accesses.size());
  for (const Access& access : accesses) {
    const RegionDesc& desc = directory.region(access.region);
    void* ptr = desc.host_ptr == nullptr
                    ? nullptr
                    : static_cast<char*>(desc.host_ptr) + access.offset;
    const std::uint64_t size =
        access.length != 0 ? access.length : desc.size - access.offset;
    args_.push_back(ResolvedArg{ptr, size});
  }
}

void* TaskContext::arg(std::size_t index) const {
  VERSA_CHECK(index < args_.size());
  return args_[index].ptr;
}

std::uint64_t TaskContext::arg_size(std::size_t index) const {
  VERSA_CHECK(index < args_.size());
  return args_[index].size;
}

}  // namespace versa
