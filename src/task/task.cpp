#include "task/task.h"

#include "common/check.h"
#include "data/directory.h"

namespace versa {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kCreated:
      return "created";
    case TaskState::kReady:
      return "ready";
    case TaskState::kQueued:
      return "queued";
    case TaskState::kRunning:
      return "running";
    case TaskState::kFinished:
      return "finished";
  }
  return "?";
}

TaskContext::TaskContext(const AccessList& accesses,
                         const DataDirectory& directory, WorkerId worker,
                         DeviceKind device)
    : worker_(worker), device_(device) {
  args_.reserve(accesses.size());
  for (const Access& access : accesses) {
    const RegionDesc& desc = directory.region(access.region);
    void* ptr = desc.host_ptr == nullptr
                    ? nullptr
                    : static_cast<char*>(desc.host_ptr) + access.offset;
    const std::uint64_t size =
        access.length != 0 ? access.length : desc.size - access.offset;
    args_.push_back(ResolvedArg{ptr, size, access.region, access.offset});
  }
}

void* TaskContext::arg(std::size_t index) const {
  VERSA_CHECK(index < args_.size());
  return args_[index].ptr;
}

std::uint64_t TaskContext::arg_size(std::size_t index) const {
  VERSA_CHECK(index < args_.size());
  return args_[index].size;
}

void AccessWitness::span(std::size_t index, AccessMode mode,
                         std::uint64_t off, std::uint64_t len) {
  if (ctx_.witness_ == nullptr) return;
  VERSA_CHECK(index < ctx_.args_.size());
  const TaskContext::ResolvedArg& arg = ctx_.args_[index];
  if (off >= arg.size) return;
  const std::uint64_t avail = arg.size - off;
  const std::uint64_t span_len = len < avail ? len : avail;
  if (span_len == 0) return;
  ctx_.witness_->push_back(
      WitnessSpan{arg.region, mode, arg.offset + off, span_len});
}

void AccessWitness::touch_bytes(RegionId region, AccessMode mode,
                                std::uint64_t offset, std::uint64_t length) {
  if (ctx_.witness_ == nullptr || length == 0) return;
  ctx_.witness_->push_back(WitnessSpan{region, mode, offset, length});
}

}  // namespace versa
