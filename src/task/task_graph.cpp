#include "task/task_graph.h"

#include "common/check.h"

namespace versa {

TaskGraph::TaskGraph() {
  // Graph 0 is the always-present default root (tenant 0).
  graphs_.push_back(GraphInfo{});
}

Task& TaskGraph::create_task(TaskTypeId type, AccessList accesses,
                             std::uint64_t data_set_size, std::string label,
                             GraphId graph) {
  VERSA_CHECK(graph < graphs_.size());
  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.type = type;
  task.accesses = std::move(accesses);
  task.data_set_size = data_set_size;
  task.label = std::move(label);
  task.graph = graph;
  task.tenant = graphs_[graph].tenant;
  tasks_.push_back(std::move(task));
  ++unfinished_;
  ++graphs_[graph].unfinished;
  ++graphs_[graph].total;
  return tasks_.back();
}

GraphId TaskGraph::open_graph(TenantId tenant) {
  GraphId id = static_cast<GraphId>(graphs_.size());
  GraphInfo info;
  info.tenant = tenant;
  graphs_.push_back(info);
  return id;
}

bool TaskGraph::graph_finished(GraphId graph) const {
  VERSA_CHECK(graph < graphs_.size());
  return graphs_[graph].unfinished == 0;
}

TenantId TaskGraph::graph_tenant(GraphId graph) const {
  VERSA_CHECK(graph < graphs_.size());
  return graphs_[graph].tenant;
}

std::size_t TaskGraph::graph_size(GraphId graph) const {
  VERSA_CHECK(graph < graphs_.size());
  return graphs_[graph].total;
}

std::uint32_t TaskGraph::add_dependencies(Task& task,
                                          const std::vector<TaskId>& preds) {
  VERSA_CHECK(task.state == TaskState::kCreated);
  std::uint32_t live = 0;
  for (TaskId pred_id : preds) {
    VERSA_CHECK(pred_id < tasks_.size());
    VERSA_CHECK_MSG(pred_id != task.id, "task cannot depend on itself");
    Task& pred = tasks_[pred_id];
    if (pred.state == TaskState::kFinished) continue;
    pred.successors.push_back(task.id);
    ++live;
    ++edges_;
  }
  task.remaining_deps = live;
  return live;
}

void TaskGraph::mark_finished(TaskId id, Time now,
                              std::vector<TaskId>& newly_ready) {
  Task& task = this->task(id);
  VERSA_CHECK_MSG(task.state == TaskState::kRunning,
                  "finishing a task that was not running");
  task.state = TaskState::kFinished;
  task.finish_time = now;
  VERSA_CHECK(unfinished_ > 0);
  --unfinished_;
  VERSA_CHECK(graphs_[task.graph].unfinished > 0);
  --graphs_[task.graph].unfinished;
  for (TaskId succ_id : task.successors) {
    Task& succ = tasks_[succ_id];
    VERSA_CHECK(succ.remaining_deps > 0);
    if (--succ.remaining_deps == 0) {
      newly_ready.push_back(succ_id);
    }
  }
}

void TaskGraph::finish_stub(TaskId id, Time now) {
  Task& task = this->task(id);
  VERSA_CHECK_MSG(task.state == TaskState::kCreated,
                  "finish_stub on a task the scheduler saw");
  VERSA_CHECK_MSG(task.successors.empty() && task.remaining_deps == 0,
                  "finish_stub on a task with dependence edges");
  task.state = TaskState::kFinished;
  task.finish_time = now;
  VERSA_CHECK(unfinished_ > 0);
  --unfinished_;
  VERSA_CHECK(graphs_[task.graph].unfinished > 0);
  --graphs_[task.graph].unfinished;
}

Task& TaskGraph::task(TaskId id) {
  VERSA_CHECK(id < tasks_.size());
  return tasks_[id];
}

const Task& TaskGraph::task(TaskId id) const {
  VERSA_CHECK(id < tasks_.size());
  return tasks_[id];
}

void TaskGraph::reset() {
  tasks_.clear();
  graphs_.clear();
  graphs_.push_back(GraphInfo{});
  unfinished_ = 0;
  edges_ = 0;
}

}  // namespace versa
