#include "task/version_registry.h"

#include "common/check.h"

namespace versa {

TaskTypeId VersionRegistry::declare_task(std::string name) {
  VERSA_CHECK_MSG(!name.empty(), "task type needs a name");
  TypeInfo info;
  info.name = std::move(name);
  types_.push_back(std::move(info));
  return static_cast<TaskTypeId>(types_.size() - 1);
}

VersionId VersionRegistry::add_version(TaskTypeId type, DeviceKind device,
                                       std::string name, TaskFn fn,
                                       CostModelPtr cost) {
  VERSA_CHECK(type < types_.size());
  TaskVersion v;
  v.id = static_cast<VersionId>(versions_.size());
  v.type = type;
  v.device = device;
  v.name = std::move(name);
  v.fn = std::move(fn);
  v.cost = std::move(cost);
  v.is_main = types_[type].versions.empty();
  versions_.push_back(std::move(v));
  types_[type].versions.push_back(versions_.back().id);
  return versions_.back().id;
}

const TaskVersion& VersionRegistry::version(VersionId id) const {
  VERSA_CHECK(id < versions_.size());
  return versions_[id];
}

const std::string& VersionRegistry::task_name(TaskTypeId type) const {
  VERSA_CHECK(type < types_.size());
  return types_[type].name;
}

TaskTypeId VersionRegistry::find_task(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<TaskTypeId>(i);
  }
  return kInvalidTaskType;
}

VersionId VersionRegistry::find_version(TaskTypeId type,
                                        std::string_view name) const {
  for (VersionId id : versions(type)) {
    if (versions_[id].name == name) return id;
  }
  return kInvalidVersion;
}

const std::vector<VersionId>& VersionRegistry::versions(TaskTypeId type) const {
  VERSA_CHECK(type < types_.size());
  VERSA_CHECK_MSG(!types_[type].versions.empty(),
                  "task type has no registered versions");
  return types_[type].versions;
}

std::vector<VersionId> VersionRegistry::versions_for_device(
    TaskTypeId type, DeviceKind device) const {
  std::vector<VersionId> out;
  for (VersionId id : versions(type)) {
    if (versions_[id].device == device) out.push_back(id);
  }
  return out;
}

VersionId VersionRegistry::main_version(TaskTypeId type) const {
  return versions(type).front();
}

bool VersionRegistry::device_supported(TaskTypeId type,
                                       DeviceKind device) const {
  for (VersionId id : versions(type)) {
    if (versions_[id].device == device) return true;
  }
  return false;
}

}  // namespace versa
