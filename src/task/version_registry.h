// Multi-version task registry — the runtime side of the `implements` clause.
//
// Each task *type* (the "main implementation" in OmpSs source) owns a set of
// versions. A version targets one device kind and carries the callable body
// plus, for simulation, a cost model. The paper's rules are enforced here:
// versions always attach to the set of a main implementation (never to
// another version), and all versions of a set share the same signature —
// in our API, the same access list shape, supplied per task instance.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "machine/cost_model.h"
#include "task/task.h"

namespace versa {

struct TaskVersion {
  VersionId id = kInvalidVersion;
  TaskTypeId type = kInvalidTaskType;
  DeviceKind device = DeviceKind::kSmp;
  std::string name;
  TaskFn fn;           ///< may be empty for synthetic/simulated tasks
  CostModelPtr cost;   ///< required by the sim backend
  bool is_main = false;
};

class VersionRegistry {
 public:
  /// Declare a task type (the main implementation's identity).
  TaskTypeId declare_task(std::string name);

  /// Attach a version to a task type. The first version added becomes the
  /// main implementation.
  VersionId add_version(TaskTypeId type, DeviceKind device, std::string name,
                        TaskFn fn, CostModelPtr cost);

  const TaskVersion& version(VersionId id) const;
  const std::string& task_name(TaskTypeId type) const;
  TaskTypeId find_task(const std::string& name) const;  ///< kInvalidTaskType if absent

  /// Version of `type` named `name`; kInvalidVersion if absent. The lookup
  /// every external-profile importer (hints, XML, store) resolves through.
  VersionId find_version(TaskTypeId type, std::string_view name) const;

  /// All versions of a type, in registration order (main first).
  const std::vector<VersionId>& versions(TaskTypeId type) const;

  /// Versions of a type runnable on `device`.
  std::vector<VersionId> versions_for_device(TaskTypeId type,
                                             DeviceKind device) const;

  VersionId main_version(TaskTypeId type) const;

  /// True if some version of `type` can run on `device`.
  bool device_supported(TaskTypeId type, DeviceKind device) const;

  std::size_t task_type_count() const { return types_.size(); }
  std::size_t version_count() const { return versions_.size(); }

 private:
  struct TypeInfo {
    std::string name;
    std::vector<VersionId> versions;
  };

  std::vector<TypeInfo> types_;
  std::vector<TaskVersion> versions_;
};

}  // namespace versa
