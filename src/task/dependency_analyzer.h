// Region-based data-dependence analysis (the StarSs dependence support).
//
// For every registered region the analyzer maintains a set of disjoint byte
// intervals, each recording the last task that wrote it and the tasks that
// have read it since. Submitting a task yields its predecessor set:
//   read  after write            -> RAW dependence on the last writer
//   write after read             -> WAR dependence on the readers
//   write after write            -> WAW dependence on the last writer
// Intervals are split at access boundaries, so OmpSs array-section style
// dependences ("[BS*BS]C" on different tiles, overlapping slices, ...) are
// tracked precisely at byte granularity.
//
// Concurrency: interval state is partitioned into kShardCount shards by
// `region % kShardCount` — the same striping the DataDirectory uses — so
// producers registering tasks over disjoint regions take only their shard
// mutexes (class analyzer.shard, rank 16, below sched.submit) and proceed
// in parallel. A task whose accesses span several shards locks them in
// ascending shard-index order (the class is marked reentrant so the
// rank checker accepts the same-class nesting; the fixed order rules out
// deadlock). Program order still matters *per region chain*: two tasks
// whose accesses overlap must have their add_task calls ordered by the
// caller (the runtime serializes same-graph submission), but tasks over
// disjoint regions may register concurrently — the predecessor sets then
// equal those of any serial interleaving.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "task/access.h"
#include "util/annotated_sync.h"

namespace versa {

class DependencyAnalyzer {
 public:
  /// Shard fan-out; mirrors DataDirectory::kShardCount so a region maps to
  /// the same stripe in both structures.
  static constexpr std::size_t kShardCount = 8;

  /// Record `task`'s accesses (lengths must be resolved, i.e. non-zero)
  /// and append its distinct predecessor task ids to `preds`.
  /// Tasks on overlapping regions must be submitted in program order;
  /// tasks on disjoint regions may call this concurrently.
  void add_task(TaskId task, const AccessList& accesses,
                std::vector<TaskId>& preds);

  /// Forget all tracking for a region (region deregistration).
  void clear_region(RegionId region);

  void reset();

  /// Number of live intervals across all regions (test/diagnostic hook).
  std::size_t interval_count() const;

 private:
  struct Interval {
    std::uint64_t end = 0;  ///< exclusive; key of the map is the start
    TaskId last_writer = kInvalidTask;
    std::vector<TaskId> readers;  ///< readers since last_writer
  };

  /// Per-region interval map keyed by interval start. Invariant: intervals
  /// are disjoint and non-empty; bytes never accessed have no interval.
  using IntervalMap = std::map<std::uint64_t, Interval>;

  struct Shard {
    Shard() : mutex(lock_order::kLockRankAnalyzerShard) {}
    mutable versa::Mutex mutex;
    std::map<RegionId, IntervalMap> regions VERSA_GUARDED_BY(mutex);
  };

  Shard& shard_of(RegionId region) { return shards_[region % kShardCount]; }
  const Shard& shard_of(RegionId region) const {
    return shards_[region % kShardCount];
  }

  std::array<Shard, kShardCount> shards_;

  /// Split the interval containing `pos` (if any) so that `pos` becomes a
  /// boundary. Leaves the map equivalent.
  static void split_at(IntervalMap& map, std::uint64_t pos);
};

}  // namespace versa
