// Region-based data-dependence analysis (the StarSs dependence support).
//
// For every registered region the analyzer maintains a set of disjoint byte
// intervals, each recording the last task that wrote it and the tasks that
// have read it since. Submitting a task yields its predecessor set:
//   read  after write            -> RAW dependence on the last writer
//   write after read             -> WAR dependence on the readers
//   write after write            -> WAW dependence on the last writer
// Intervals are split at access boundaries, so OmpSs array-section style
// dependences ("[BS*BS]C" on different tiles, overlapping slices, ...) are
// tracked precisely at byte granularity.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "task/access.h"

namespace versa {

class DependencyAnalyzer {
 public:
  /// Record `task`'s accesses (lengths must be resolved, i.e. non-zero)
  /// and append its distinct predecessor task ids to `preds`.
  /// Tasks must be submitted in program order.
  void add_task(TaskId task, const AccessList& accesses,
                std::vector<TaskId>& preds);

  /// Forget all tracking for a region (region deregistration).
  void clear_region(RegionId region);

  void reset();

  /// Number of live intervals across all regions (test/diagnostic hook).
  std::size_t interval_count() const;

 private:
  struct Interval {
    std::uint64_t end = 0;  ///< exclusive; key of the map is the start
    TaskId last_writer = kInvalidTask;
    std::vector<TaskId> readers;  ///< readers since last_writer
  };

  /// Per-region interval map keyed by interval start. Invariant: intervals
  /// are disjoint and non-empty; bytes never accessed have no interval.
  using IntervalMap = std::map<std::uint64_t, Interval>;

  std::map<RegionId, IntervalMap> regions_;

  /// Split the interval containing `pos` (if any) so that `pos` becomes a
  /// boundary. Leaves the map equivalent.
  static void split_at(IntervalMap& map, std::uint64_t pos);
};

}  // namespace versa
