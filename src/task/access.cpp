#include "task/access.h"

namespace versa {

const char* to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kIn:
      return "in";
    case AccessMode::kOut:
      return "out";
    case AccessMode::kInOut:
      return "inout";
  }
  return "?";
}

}  // namespace versa
