// Task graph bookkeeping: storage, dependence edges, readiness propagation.
//
// The graph owns every submitted Task for the lifetime of a run (ids are
// indices), counts unsatisfied predecessors, and releases successors on
// completion. Concurrency control lives one level up, in Runtime — the
// graph itself is single-threaded by contract.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "task/task.h"

namespace versa {

class TaskGraph {
 public:
  TaskGraph();

  /// Create a task in kCreated state. Accesses must have resolved lengths.
  /// The task joins `graph` (an id from open_graph(), or kDefaultGraph).
  Task& create_task(TaskTypeId type, AccessList accesses,
                    std::uint64_t data_set_size, std::string label,
                    GraphId graph = kDefaultGraph);

  /// Open an independent graph root owned by `tenant`. Graph 0 (the
  /// implicit default every single-graph program uses) always exists.
  GraphId open_graph(TenantId tenant);

  /// Per-graph completion: true when every task of `graph` has finished.
  bool graph_finished(GraphId graph) const;

  TenantId graph_tenant(GraphId graph) const;
  std::size_t graph_size(GraphId graph) const;
  std::size_t graph_count() const { return graphs_.size(); }

  /// Add dependence edges from each predecessor to `task`. Predecessors
  /// already finished contribute no edge. Returns the number of live edges
  /// added; if zero, the caller should move the task to ready.
  std::uint32_t add_dependencies(Task& task, const std::vector<TaskId>& preds);

  /// Mark `task` finished and collect successors that became ready.
  void mark_finished(TaskId id, Time now, std::vector<TaskId>& newly_ready);

  /// Retire a placeholder task that never entered the scheduler: a split
  /// shell (its children ran instead) or a fused-away sibling (the fused
  /// host ran instead). The task must still be kCreated, unregistered
  /// (no dependence edges in either direction) — it goes straight to
  /// kFinished and the graph counters settle as if it had run.
  void finish_stub(TaskId id, Time now);

  Task& task(TaskId id);
  const Task& task(TaskId id) const;

  std::size_t size() const { return tasks_.size(); }
  std::size_t unfinished() const { return unfinished_; }
  bool all_finished() const { return unfinished_ == 0; }

  /// Iterate all tasks (reporting).
  const std::deque<Task>& tasks() const { return tasks_; }

  /// Drop all tasks (between benchmark repetitions).
  void reset();

  /// Total dependence edges added (diagnostics).
  std::uint64_t edge_count() const { return edges_; }

 private:
  /// One graph root's bookkeeping; index in graphs_ is the GraphId.
  struct GraphInfo {
    TenantId tenant = kDefaultTenant;
    std::size_t unfinished = 0;
    std::size_t total = 0;
  };

  std::deque<Task> tasks_;
  std::vector<GraphInfo> graphs_;
  std::size_t unfinished_ = 0;
  std::uint64_t edges_ = 0;
};

}  // namespace versa
