// Data access clauses — the runtime analogue of the OmpSs
// input / output / inout dependence clauses (with copy_deps semantics:
// every dependence clause also implies the corresponding copy clause).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace versa {

enum class AccessMode : std::uint8_t {
  kIn,     ///< task reads the region (copy_in)
  kOut,    ///< task overwrites the region entirely (copy_out)
  kInOut,  ///< task reads and writes the region (copy_inout)
};

const char* to_string(AccessMode mode);

inline bool reads(AccessMode mode) { return mode != AccessMode::kOut; }
inline bool writes(AccessMode mode) { return mode != AccessMode::kIn; }

/// One dependence/copy clause of a task: a byte range of a registered
/// region. Offset/length support OmpSs array-section style dependences;
/// most callers pass the whole region.
struct Access {
  RegionId region = 0;
  AccessMode mode = AccessMode::kIn;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;  ///< 0 means "to the end of the region"

  static Access in(RegionId r) { return {r, AccessMode::kIn, 0, 0}; }
  static Access out(RegionId r) { return {r, AccessMode::kOut, 0, 0}; }
  static Access inout(RegionId r) { return {r, AccessMode::kInOut, 0, 0}; }

  static Access in_range(RegionId r, std::uint64_t off, std::uint64_t len) {
    return {r, AccessMode::kIn, off, len};
  }
  static Access out_range(RegionId r, std::uint64_t off, std::uint64_t len) {
    return {r, AccessMode::kOut, off, len};
  }
  static Access inout_range(RegionId r, std::uint64_t off, std::uint64_t len) {
    return {r, AccessMode::kInOut, off, len};
  }
};

using AccessList = std::vector<Access>;

/// One byte span a task body actually touched, reported through the
/// AccessWitness API (DESIGN.md §12). Unlike Access, `length` is always
/// resolved — witnesses are recorded against live regions, so "to the
/// end" has no meaning here.
struct WitnessSpan {
  RegionId region = 0;
  AccessMode mode = AccessMode::kIn;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// The spans one task execution touched, in report order. Only allocated
/// when a sanitizer is attached to the runtime (TaskContext carries a null
/// log otherwise), so witness calls in task bodies are a branch-on-null
/// when sanitizing is off.
using WitnessLog = std::vector<WitnessSpan>;

}  // namespace versa
