// Task instances.
//
// A Task is one invocation of a multi-version task type: its dependence
// clauses, the version the scheduler chose, dependency bookkeeping, and the
// timestamps the reporters consume. Task bodies receive a TaskContext that
// exposes the accessed regions (and their host storage, when present).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "task/access.h"

namespace versa {

class DataDirectory;

enum class TaskState : std::uint8_t {
  kCreated,   ///< submitted, dependencies unsatisfied
  kReady,     ///< dependencies satisfied, waiting for the scheduler
  kQueued,    ///< assigned to a worker queue
  kRunning,   ///< executing
  kFinished,  ///< done
};

const char* to_string(TaskState state);

/// Execution-time view handed to task bodies. Argument pointers/sizes are
/// resolved at construction (under the runtime lock); bodies then run
/// lock-free on the thread backend without touching shared structures.
class TaskContext {
 public:
  TaskContext(const AccessList& accesses, const DataDirectory& directory,
              WorkerId worker, DeviceKind device);

  /// Host pointer of the i-th access clause (nullptr for virtual regions).
  void* arg(std::size_t index) const;

  /// Byte size of the i-th access clause.
  std::uint64_t arg_size(std::size_t index) const;

  std::size_t arg_count() const { return args_.size(); }

  WorkerId worker() const { return worker_; }
  DeviceKind device() const { return device_; }

  /// Attach the sanitizer witness log for this execution. Executors call
  /// this before running the body iff a sanitizer is active; bodies never
  /// see the difference (AccessWitness no-ops on a null log).
  void set_witness_log(WitnessLog* log) { witness_ = log; }
  bool witnessing() const { return witness_ != nullptr; }

 private:
  friend class AccessWitness;
  struct ResolvedArg {
    void* ptr;
    std::uint64_t size;
    RegionId region;
    std::uint64_t offset;  ///< resolved start within the region
  };
  std::vector<ResolvedArg> args_;
  WorkerId worker_;
  DeviceKind device_;
  WitnessLog* witness_ = nullptr;
};

/// Witness handle task bodies use to report the byte spans they actually
/// touch (DESIGN.md §12). In spec/race sanitize modes the checker compares
/// these against the task's declared accesses; with the sanitizer off every
/// call is a branch-on-null, so kernels keep their witness calls
/// unconditionally. Arg-indexed methods report relative to the resolved
/// clause (offset 0 = start of the clause); touch_bytes reports a raw
/// region-absolute span, for bodies that address regions outside their own
/// clause resolution.
class AccessWitness {
 public:
  explicit AccessWitness(TaskContext& ctx) : ctx_(ctx) {}

  /// Whole resolved span of clause `index`.
  void read(std::size_t index) { span(index, AccessMode::kIn, 0, kWhole); }
  void write(std::size_t index) { span(index, AccessMode::kOut, 0, kWhole); }
  void read_write(std::size_t index) {
    span(index, AccessMode::kInOut, 0, kWhole);
  }

  /// Sub-span of clause `index`, clamped to the clause's resolved size.
  void read_range(std::size_t index, std::uint64_t off, std::uint64_t len) {
    span(index, AccessMode::kIn, off, len);
  }
  void write_range(std::size_t index, std::uint64_t off, std::uint64_t len) {
    span(index, AccessMode::kOut, off, len);
  }
  void read_write_range(std::size_t index, std::uint64_t off,
                        std::uint64_t len) {
    span(index, AccessMode::kInOut, off, len);
  }

  /// Raw region-absolute span, bypassing clause resolution.
  void touch_bytes(RegionId region, AccessMode mode, std::uint64_t offset,
                   std::uint64_t length);

 private:
  static constexpr std::uint64_t kWhole = ~std::uint64_t{0};
  void span(std::size_t index, AccessMode mode, std::uint64_t off,
            std::uint64_t len);
  TaskContext& ctx_;
};

/// A task body. May be empty (synthetic workloads driven purely by cost
/// models in simulation).
using TaskFn = std::function<void(TaskContext&)>;

/// Atomic wrapper around the space a task's directory acquire ran against.
/// The thread backend's prefetch path and the executing worker race to
/// stage a task's data off the runtime lock; claim() (a strong CAS)
/// arbitrates so exactly one of them performs each acquire. Copy/move
/// transfer the plain value — tasks are only moved during single-threaded
/// graph construction, before any executor can race on them.
class AcquiredSpace {
 public:
  AcquiredSpace() = default;
  AcquiredSpace(const AcquiredSpace& other) : space_(other.load()) {}
  AcquiredSpace& operator=(const AcquiredSpace& other) {
    store(other.load());
    return *this;
  }

  SpaceId load(std::memory_order order = std::memory_order_acquire) const {
    return space_.load(order);
  }
  void store(SpaceId space,
             std::memory_order order = std::memory_order_release) {
    space_.store(space, order);
  }

  /// Claim the acquire for `desired`: succeeds iff the current value is
  /// `expected` (updated to the observed value on failure).
  bool claim(SpaceId& expected, SpaceId desired) {
    return space_.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

 private:
  std::atomic<SpaceId> space_{kInvalidSpace};
};

struct Task {
  TaskId id = kInvalidTask;
  TaskTypeId type = kInvalidTaskType;
  AccessList accesses;
  /// Sum of accessed region sizes, each region counted once even when it
  /// appears in several clauses (paper §IV-B footnote 2). This is the key
  /// of the profile's data-set-size group.
  std::uint64_t data_set_size = 0;
  std::string label;

  /// OmpSs `priority` clause analogue: higher runs earlier among tasks
  /// queued on the same worker. Useful for critical-path tasks like
  /// Cholesky's potrf (§V-B2: "it acts like a bottleneck and if it is not
  /// run as soon as its data dependencies are satisfied, there is less
  /// parallelism to exploit").
  int priority = 0;

  /// Graph root this task belongs to and the tenant that owns that graph
  /// (service mode, DESIGN.md §10). Single-graph programs leave both at the
  /// defaults and see no behaviour change.
  GraphId graph = kDefaultGraph;
  TenantId tenant = kDefaultTenant;

  TaskState state = TaskState::kCreated;
  VersionId chosen_version = kInvalidVersion;
  WorkerId assigned_worker = kInvalidWorker;

  /// Nesting: the task whose body submitted this one (kInvalidTask for
  /// master-thread submissions) and the number of direct children still
  /// unfinished — a taskwait inside a task body waits for exactly these
  /// (OmpSs taskwait is children-scoped, not a global barrier).
  TaskId parent = kInvalidTask;
  std::uint32_t live_children = 0;

  /// Split lineage (adaptive granularity, DESIGN.md §11). A re-tiled
  /// submission leaves a *shell* task — the original type and accesses,
  /// never registered with the analyzer, never released — and the
  /// controller's children carry split_parent pointing at it. The shell
  /// retires (TaskGraph::finish_stub) when split_live reaches zero;
  /// split_accum then holds the children's summed execution time, the
  /// observation the controller's reversal CUSUM consumes.
  TaskId split_parent = kInvalidTask;
  std::uint32_t split_live = 0;       ///< shell: children not yet finished
  std::uint32_t split_children = 0;   ///< shell: children created
  Duration split_accum = 0.0;         ///< shell: sum of child durations

  /// Fused-batch identity (adaptive granularity). Absorbed siblings point
  /// at the surviving host via fused_into; the host counts the absorbed
  /// siblings in fused_count and remembers the pre-fusion type/size so
  /// completion can feed the controller at the original granularity key.
  TaskId fused_into = kInvalidTask;
  std::uint32_t fused_count = 0;
  TaskTypeId origin_type = kInvalidTaskType;
  std::uint64_t origin_size = 0;

  /// Dependency bookkeeping (guarded by the runtime lock).
  std::uint32_t remaining_deps = 0;
  std::vector<TaskId> successors;

  /// Timeline (virtual time under SimExecutor, wall time otherwise).
  Time submit_time = 0.0;
  Time ready_time = 0.0;
  Time start_time = 0.0;
  Time finish_time = 0.0;
  Duration measured_duration = 0.0;

  /// Completion time of this task's prefetched transfers (sim backend).
  Time transfers_ready_time = 0.0;
  /// Space the directory acquire ran against (kInvalidSpace = not yet).
  /// Work stealing re-homes a task; the executor re-acquires if this does
  /// not match the executing worker's space. Atomic: the thread backend's
  /// prefetch thread and the executing worker CAS-claim it off the
  /// runtime lock (see AcquiredSpace).
  AcquiredSpace acquired_space;

  /// Execution-time estimate the scheduler charged to the assigned worker's
  /// busy time; subtracted back on completion (versioning scheduler).
  Duration scheduler_estimate = 0.0;

  /// Execution attempts so far (failure injection: transient device
  /// errors make the runtime reschedule the task; see
  /// SimExecutorConfig::failure_rate).
  std::uint32_t attempts = 0;
};

}  // namespace versa
