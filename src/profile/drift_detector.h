// Online drift detection for learned task-version timings.
//
// The paper's versioning scheduler "never stops profiling" (§IV-B), but a
// long-running mean only *decays* toward new behaviour — after a frequency
// change, a driver update, or contention from a co-runner, the stale mean
// can dominate placement for thousands of tasks. This detector makes the
// self-adaptive claim explicit: once a size-group's version has a reliable
// mean, every new observation feeds a two-sided CUSUM test against that
// reference; a sustained shift raises an alarm and the profile table throws
// the stale history away, re-entering the learning phase for that group.
//
// Observations are normalized by the reference mean, so the slack `delta`
// and alarm threshold are dimensionless and one calibration works for
// microsecond and second-scale kernels alike. With the defaults (delta
// 0.10, threshold 2.0) the test is silent under the simulator's lognormal
// noise at several times its default magnitude, while a 2x cost shift
// accumulates ~0.9 per observation and alarms within a handful of tasks.
#pragma once

#include <cstdint>

namespace versa {

struct DriftConfig {
  /// Master switch; off keeps the paper's decay-only behaviour.
  bool enabled = false;
  /// Dead zone around the reference, as a fraction of it: observations
  /// within [1-delta, 1+delta] of the reference never accumulate evidence.
  double delta = 0.10;
  /// CUSUM alarm threshold, in the same normalized units.
  double threshold = 2.0;
};

/// Two-sided CUSUM over observations normalized by a reference mean.
/// Detects both slowdowns (the version got worse) and speedups (a
/// competitor-relevant improvement) — either way the stored mean is wrong.
class CusumDetector {
 public:
  explicit CusumDetector(DriftConfig config = {});

  /// Start (or restart) the test against `reference_mean`. Non-positive
  /// references cannot be normalized against and leave the test disarmed.
  void arm(double reference_mean);
  void disarm();
  bool armed() const { return armed_; }
  /// The reference of the current test — or, after an alarm disarmed the
  /// detector, of the test that alarmed (the stale mean, for reporting).
  double reference() const { return reference_; }

  /// Feed one observation. Returns true when the accumulated evidence
  /// crosses the threshold; the detector disarms itself on alarm (the
  /// caller re-arms once a fresh mean is reliable again).
  bool add(double observed);

  /// Current evidence, max of the up/down branches (tests, reporting).
  double statistic() const;

 private:
  DriftConfig config_;
  bool armed_ = false;
  double reference_ = 0.0;
  double g_up_ = 0.0;
  double g_down_ = 0.0;
};

}  // namespace versa
