#include "profile/machine_signature.h"

#include <cstdio>
#include <cstring>

namespace versa {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void mix_string(std::uint64_t& hash, std::string_view text) {
  // Length-prefix so ("ab","c") and ("a","bc") hash differently.
  const std::uint64_t size = text.size();
  mix_bytes(hash, &size, sizeof(size));
  mix_bytes(hash, text.data(), text.size());
}

void mix_u64(std::uint64_t& hash, std::uint64_t value) {
  mix_bytes(hash, &value, sizeof(value));
}

void mix_double(std::uint64_t& hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  mix_u64(hash, bits);
}

}  // namespace

std::string MachineSignature::hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

MachineSignature compute_machine_signature(const Machine& machine,
                                           std::string_view calibration_token) {
  std::uint64_t hash = kFnvOffset;
  mix_u64(hash, machine.devices().size());
  for (const DeviceDesc& device : machine.devices()) {
    mix_u64(hash, static_cast<std::uint64_t>(device.kind));
    mix_u64(hash, device.space);
    mix_string(hash, device.name);
    mix_double(hash, device.peak_flops);
  }
  mix_u64(hash, machine.worker_count());
  for (const WorkerDesc& worker : machine.workers()) {
    mix_u64(hash, worker.device);
    mix_u64(hash, static_cast<std::uint64_t>(worker.kind));
  }
  mix_u64(hash, machine.space_count());
  for (const MemorySpaceDesc& space : machine.spaces()) {
    mix_u64(hash, space.capacity);
  }
  mix_string(hash, calibration_token);

  MachineSignature signature;
  signature.hash = hash;
  signature.text = machine.summary();
  if (!calibration_token.empty()) {
    signature.text += " / calib:";
    signature.text += calibration_token;
  }
  return signature;
}

}  // namespace versa
