// Persistent TaskVersionSet profiles — the §VII "external hints" sketch
// grown into a real subsystem. The versioning scheduler pays a λ-bounded
// learning phase on every run; persisting the learned per-size-group
// statistics (mean, count, second moment) across process restarts lets a
// warm-started run enter the reliable-information phase immediately.
//
// On-disk format (versioned, line-oriented, keyed by names so it survives
// id renumbering):
//
//   # versa profile-store v1
//   machine <free text, informational>
//   signature <16-hex machine hash>
//   entry <task_name> <version_name> <group_key> <mean> <count> <m2>
//   ...
//   checksum <16-hex FNV-1a over the entry lines>
//
// Load-time validation, strongest first: magic + format version, machine
// signature (a profile learned on different hardware is worse than no
// profile — mismatch falls back to a cold start), payload checksum
// (truncated or bit-rotted files fall back to a cold start), then per-entry
// name resolution (stale entries for renamed tasks are skipped, counted as
// misses). Nothing is applied to the table unless the whole file is sound.
//
// The store is also the single import path for the two legacy hint formats
// (text hints_file.h, XML xml_hints.h): import_text sniffs the format, so
// the three formats can never diverge in how they seed a profile table.
//
// Thread-safety: immutable after construction (registry reference +
// signature value); load()/save() touch only local state and the
// filesystem. Callers serialize the *table* they load into — the runtime
// loads under its lock at first-submit and saves at destruction, after
// worker threads have joined.
#pragma once

#include <string>
#include <string_view>

#include "profile/machine_signature.h"
#include "sched/profile_table.h"
#include "task/version_registry.h"

namespace versa {

enum class ProfileLoadStatus : std::uint8_t {
  kOk,                 ///< file parsed and applied (possibly with skips)
  kMissing,            ///< file absent/unreadable — normal cold start
  kCorrupt,            ///< bad magic, malformed entry, or checksum mismatch
  kSignatureMismatch,  ///< recorded on a different machine/calibration
};

const char* to_string(ProfileLoadStatus status);

struct ProfileLoadResult {
  ProfileLoadStatus status = ProfileLoadStatus::kMissing;
  int applied = 0;  ///< entries seeded into the table (store hits)
  int skipped = 0;  ///< entries naming unknown tasks/versions (store misses)
  std::string message;

  /// True when the load seeded at least one entry — the run warm-starts.
  bool warm() const { return status == ProfileLoadStatus::kOk && applied > 0; }
};

class ProfileStore {
 public:
  /// Serialization format of a save path. kAuto picks by extension:
  /// ".xml" → XML hints, ".txt"/".hints" → text hints, else native store.
  enum class Format : std::uint8_t { kAuto, kStore, kTextHints, kXmlHints };

  ProfileStore(const VersionRegistry& registry, MachineSignature signature);

  const MachineSignature& signature() const { return signature_; }

  /// Native-format serialization of every table entry.
  std::string serialize(const ProfileTable& table) const;

  /// Parse any of the three formats (sniffed from the content) into
  /// `table`. Native-store text is signature- and checksum-validated; the
  /// legacy hint formats carry no signature and load as trusted input.
  ProfileLoadResult import_text(std::string_view text,
                                ProfileTable& table) const;

  /// File wrappers. save() returns false when the file cannot be written.
  bool save(const std::string& path, const ProfileTable& table,
            Format format = Format::kAuto) const;
  ProfileLoadResult load(const std::string& path, ProfileTable& table) const;

 private:
  const VersionRegistry& registry_;
  MachineSignature signature_;

  ProfileLoadResult import_store(std::string_view text,
                                 ProfileTable& table) const;
};

}  // namespace versa
