#include "profile/profile_store.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "common/string_util.h"
#include "sched/hints_file.h"
#include "sched/xml_hints.h"

namespace versa {

namespace {

constexpr std::string_view kMagic = "# versa profile-store v1";
// Anything announcing itself as a profile store (any version) goes to the
// strict store parser, so an unsupported version is a corrupt-file error
// rather than being silently misread as legacy text hints.
constexpr std::string_view kMagicPrefix = "# versa profile-store";

std::uint64_t fnv1a(std::uint64_t hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

const char* to_string(ProfileLoadStatus status) {
  switch (status) {
    case ProfileLoadStatus::kOk: return "ok";
    case ProfileLoadStatus::kMissing: return "missing";
    case ProfileLoadStatus::kCorrupt: return "corrupt";
    case ProfileLoadStatus::kSignatureMismatch: return "signature-mismatch";
  }
  return "?";
}

ProfileStore::ProfileStore(const VersionRegistry& registry,
                           MachineSignature signature)
    : registry_(registry), signature_(std::move(signature)) {}

std::string ProfileStore::serialize(const ProfileTable& table) const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "machine " << signature_.text << "\n";
  out << "signature " << signature_.hex() << "\n";
  std::uint64_t checksum = kFnvOffset;
  for (const ProfileTable::Entry& entry : table.entries()) {
    if (entry.count == 0) continue;
    char line[320];
    // %.17g round-trips doubles exactly; the store must reproduce the
    // accumulator state bit-for-bit so reliability tests stay meaningful.
    std::snprintf(line, sizeof(line), "entry %s %s %llu %.17g %llu %.17g\n",
                  registry_.task_name(entry.type).c_str(),
                  registry_.version(entry.version).name.c_str(),
                  static_cast<unsigned long long>(entry.group_key), entry.mean,
                  static_cast<unsigned long long>(entry.count), entry.m2);
    checksum = fnv1a(checksum, line);
    out << line;
  }
  out << "checksum " << to_hex(checksum) << "\n";
  return out.str();
}

ProfileLoadResult ProfileStore::import_store(std::string_view text,
                                             ProfileTable& table) const {
  ProfileLoadResult result;
  auto corrupt = [&result](std::string message) {
    result.status = ProfileLoadStatus::kCorrupt;
    result.applied = 0;
    result.skipped = 0;
    result.message = std::move(message);
    return result;
  };

  struct Staged {
    TaskTypeId type;
    VersionId version;
    std::uint64_t group_key;
    double mean;
    std::uint64_t count;
    double m2;
  };
  std::vector<Staged> staged;
  int skipped = 0;

  bool seen_magic = false;
  bool seen_signature = false;
  bool seen_checksum = false;
  std::uint64_t checksum = kFnvOffset;
  std::string stored_machine;

  for (const std::string& raw_line : split(text, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty()) continue;
    if (!seen_magic) {
      if (line != kMagic) return corrupt("bad magic / format version");
      seen_magic = true;
      continue;
    }
    if (seen_checksum) return corrupt("content after checksum line");
    if (starts_with(line, "signature ")) {
      const std::uint64_t stored =
          std::strtoull(std::string(line.substr(10)).c_str(), nullptr, 16);
      seen_signature = true;
      if (stored != signature_.hash) {
        result.status = ProfileLoadStatus::kSignatureMismatch;
        result.message = "recorded on \"" + stored_machine +
                         "\" (signature " + to_hex(stored) +
                         "), this machine is \"" + signature_.text +
                         "\" (signature " + signature_.hex() + ")";
        return result;  // nothing applied — cold start
      }
      continue;
    }
    if (starts_with(line, "machine ")) {
      stored_machine = std::string(line.substr(8));
      continue;
    }
    if (starts_with(line, "entry ")) {
      if (!seen_signature) return corrupt("entry before signature");
      // Hash the exact serialized bytes (trimmed line + newline).
      checksum = fnv1a(checksum, line);
      checksum = fnv1a(checksum, "\n");
      std::istringstream in{std::string(line)};
      std::string keyword, task_name, version_name;
      unsigned long long group_key = 0, count = 0;
      double mean = 0.0, m2 = 0.0;
      in >> keyword >> task_name >> version_name >> group_key >> mean >>
          count >> m2;
      if (in.fail() || mean < 0.0 || m2 < 0.0 || count == 0) {
        return corrupt("malformed entry line");
      }
      const TaskTypeId type = registry_.find_task(task_name);
      const VersionId version =
          type == kInvalidTaskType ? kInvalidVersion
                                   : registry_.find_version(type, version_name);
      if (version == kInvalidVersion) {
        // Applications evolve; stale names are a miss, not an error.
        ++skipped;
        continue;
      }
      staged.push_back(Staged{type, version, group_key, mean, count, m2});
      continue;
    }
    if (starts_with(line, "checksum ")) {
      const std::uint64_t stored =
          std::strtoull(std::string(line.substr(9)).c_str(), nullptr, 16);
      if (stored != checksum) return corrupt("checksum mismatch");
      seen_checksum = true;
      continue;
    }
    return corrupt("unknown directive: " + std::string(line));
  }
  if (!seen_magic) return corrupt("empty file");
  if (!seen_checksum) return corrupt("missing checksum (truncated file?)");

  for (const Staged& entry : staged) {
    table.restore(entry.type, entry.version, entry.group_key, entry.mean,
                  entry.count, entry.m2);
  }
  result.status = ProfileLoadStatus::kOk;
  result.applied = static_cast<int>(staged.size());
  result.skipped = skipped;
  result.message = "native store";
  return result;
}

ProfileLoadResult ProfileStore::import_text(std::string_view text,
                                            ProfileTable& table) const {
  const std::string_view head = trim(text.substr(0, 64));
  if (starts_with(head, kMagicPrefix)) {
    return import_store(text, table);
  }
  ProfileLoadResult result;
  if (trim(text).empty()) {
    result.status = ProfileLoadStatus::kCorrupt;
    result.message = "empty file";
    return result;
  }
  if (starts_with(head, "<")) {
    std::string error;
    const int applied = parse_xml_hints(text, registry_, table, &error);
    if (applied < 0) {
      result.status = ProfileLoadStatus::kCorrupt;
      result.message = error;
    } else {
      result.status = ProfileLoadStatus::kOk;
      result.applied = applied;
      result.message = "xml hints (legacy, unsigned)";
    }
    return result;
  }
  const int applied = parse_hints(text, registry_, table);
  if (applied < 0) {
    result.status = ProfileLoadStatus::kCorrupt;
    result.message = "malformed hints text";
  } else {
    result.status = ProfileLoadStatus::kOk;
    result.applied = applied;
    result.message = "text hints (legacy, unsigned)";
  }
  return result;
}

bool ProfileStore::save(const std::string& path, const ProfileTable& table,
                        Format format) const {
  if (format == Format::kAuto) {
    format = ends_with(path, ".xml")     ? Format::kXmlHints
             : ends_with(path, ".txt")   ? Format::kTextHints
             : ends_with(path, ".hints") ? Format::kTextHints
                                         : Format::kStore;
  }
  switch (format) {
    case Format::kXmlHints:
      return save_xml_hints(path, registry_, table);
    case Format::kTextHints:
      return save_hints(path, registry_, table);
    default: {
      // Atomic replace (temp + rename): a concurrent load() of the same
      // path — the service-mode shared warm-start cache — sees either the
      // old or the new store, never a torn half-write. The checksum would
      // downgrade a torn read to a cold start anyway; the rename avoids
      // even that.
      const std::string tmp = path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return false;
        out << serialize(table);
        if (!out) return false;
      }
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
      }
      return true;
    }
  }
}

ProfileLoadResult ProfileStore::load(const std::string& path,
                                     ProfileTable& table) const {
  std::ifstream in(path);
  ProfileLoadResult result;
  if (!in) {
    result.status = ProfileLoadStatus::kMissing;
    result.message = "cannot read " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result = import_text(buffer.str(), table);
  if (result.status != ProfileLoadStatus::kOk) {
    VERSA_LOG(kWarn) << "profile store " << path << ": "
                     << to_string(result.status)
                     << (result.message.empty() ? "" : " — ")
                     << result.message << " (cold start)";
  }
  return result;
}

}  // namespace versa
