// Machine signatures key persisted profiles to the hardware they were
// measured on. A TaskVersionSet table learned on 12 SMP cores + 2 GPUs is
// actively misleading on a different node: warm-starting from it would skip
// the learning phase with wrong means. The signature hashes everything the
// learned timings depend on — device set (kind, name, peak rate), worker
// counts, memory-space capacities — plus an optional calibration token the
// embedder derives from its cost-model calibration (host kernel rates), so
// re-calibrated installs invalidate stale stores too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "machine/machine.h"

namespace versa {

struct MachineSignature {
  /// 64-bit FNV-1a over the fields described above.
  std::uint64_t hash = 0;
  /// Human-readable summary, stored alongside the hash so a mismatch
  /// message can say what the file was recorded on.
  std::string text;

  std::string hex() const;
};

/// Compute the signature of `machine`. `calibration_token` is any string
/// identifying the cost-model calibration in force (e.g. serialized host
/// kernel rates); changing it changes the hash.
MachineSignature compute_machine_signature(
    const Machine& machine, std::string_view calibration_token = {});

}  // namespace versa
