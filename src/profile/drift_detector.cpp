#include "profile/drift_detector.h"

#include <algorithm>

#include "common/check.h"

namespace versa {

CusumDetector::CusumDetector(DriftConfig config) : config_(config) {
  VERSA_CHECK(config.delta >= 0.0);
  VERSA_CHECK(config.threshold > 0.0);
}

void CusumDetector::arm(double reference_mean) {
  armed_ = reference_mean > 0.0;
  if (armed_) reference_ = reference_mean;
  g_up_ = 0.0;
  g_down_ = 0.0;
}

void CusumDetector::disarm() {
  // Keeps reference_ so an alarm's stale mean stays readable.
  armed_ = false;
  g_up_ = 0.0;
  g_down_ = 0.0;
}

bool CusumDetector::add(double observed) {
  if (!armed()) return false;
  const double x = observed / reference_;
  g_up_ = std::max(0.0, g_up_ + (x - 1.0 - config_.delta));
  g_down_ = std::max(0.0, g_down_ + (1.0 - x - config_.delta));
  if (statistic() > config_.threshold) {
    disarm();
    return true;
  }
  return false;
}

double CusumDetector::statistic() const { return std::max(g_up_, g_down_); }

}  // namespace versa
