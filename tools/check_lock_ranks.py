#!/usr/bin/env python3
"""Lock-class lint: every versa::Mutex must name a registered LockClass.

The lock-order machinery (src/util/lock_order.h) only works when every
mutex carries a LockClass rank — a versa::Mutex default-constructed or
tied to an unregistered class silently opts out of deadlock checking.
This lint makes that structural:

  1. Collects the registered classes: `extern const LockClass kLockRank*`
     declarations in src/util/lock_order.h.
  2. Finds every `versa::Mutex` / `versa::RecursiveMutex` /
     `versa::SharedMutex` variable declaration in src/**/*.{h,cpp} and
     requires it to be constructed from a registered
     `lock_order::kLockRank*` — either inline
     (`versa::Mutex mu_{lock_order::kLockRankFoo};`) or in a constructor
     initializer list (`: mu_(lock_order::kLockRankFoo)`) found anywhere
     in the declaring directory.
  3. Flags raw std::mutex / std::recursive_mutex / std::shared_mutex
     outside the annotation layer (util/annotated_sync.h) — those bypass
     lock-order tracking.
  4. Checks the definitions in src/util/lock_order.cpp: every declared
     class must be defined, and ranks must be *unique* — two classes
     sharing a rank would let the checker pass an acquisition order that
     deadlocks (neither rank is strictly above the other).

Declarations are matched in both initializer spellings — brace
(`versa::SharedMutex mu_{lock_order::kLockRankFoo};`) and parenthesis
(`versa::SharedMutex mu(lock_order::kLockRankFoo);`) — so a
namespace-scope paren-initialized mutex cannot silently skip the check.

Exits 1 listing every offender; the CI build step runs this before
compiling anything. `--self-test` runs the lint's own fixture suite
(declarations that must pass and must fail, covering all three mutex
types and both initializer spellings) and exits nonzero if the lint has
lost coverage.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
LOCK_ORDER_H = os.path.join(SRC, "util", "lock_order.h")

# Files allowed to mention std::mutex directly: the annotation layer that
# wraps it, and the lock-order implementation itself.
RAW_MUTEX_ALLOWLIST = {
    os.path.join("util", "annotated_sync.h"),
    os.path.join("util", "lock_order.h"),
    os.path.join("util", "lock_order.cpp"),
}

# Both initializer spellings are captured: {…} and (…). A bare
# declaration (no initializer) must find its rank in a constructor
# initializer list, or it is flagged.
DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:versa::)?(?:Recursive|Shared)?Mutex\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?P<init>\{[^}]*\}|\([^)]*\))?\s*;",
)
RANK_USE_RE = re.compile(r"lock_order::(?P<cls>kLockRank\w+)")
RAW_MUTEX_RE = re.compile(r"\bstd::(?:recursive_|shared_)?mutex\b")


LOCK_ORDER_CPP = os.path.join(SRC, "util", "lock_order.cpp")


def registered_classes():
    classes = set()
    with open(LOCK_ORDER_H, encoding="utf-8") as f:
        for line in f:
            m = re.search(r"extern\s+const\s+LockClass\s+(kLockRank\w+)", line)
            if m:
                classes.add(m.group(1))
    return classes


def defined_ranks():
    """kLockRank* -> rank int, parsed from the lock_order.cpp definitions."""
    with open(LOCK_ORDER_CPP, encoding="utf-8") as f:
        text = strip_comments(f.read())
    ranks = {}
    def_re = re.compile(
        r"const\s+LockClass\s+(?P<cls>kLockRank\w+)\s*=\s*"
        r'\{\s*"(?P<name>[^"]+)"\s*,\s*(?P<rank>\d+)')
    for m in def_re.finditer(text):
        ranks[m.group("cls")] = int(m.group("rank"))
    return ranks


def rank_errors(classes):
    """Missing definitions and duplicate ranks across registered classes."""
    errors = []
    ranks = defined_ranks()
    for cls in sorted(classes - ranks.keys()):
        errors.append(
            f"util/lock_order.cpp: declared class {cls} has no parseable "
            f"definition")
    by_rank = {}
    for cls, rank in ranks.items():
        by_rank.setdefault(rank, []).append(cls)
    for rank, members in sorted(by_rank.items()):
        if len(members) > 1:
            errors.append(
                f"util/lock_order.cpp: rank {rank} is shared by "
                f"{', '.join(sorted(members))} — ranks must be unique so "
                f"every cross-class acquisition order is decidable")
    return errors


def source_files():
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if name.endswith((".h", ".cpp")):
                yield os.path.join(root, name)


def strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return text


def ctor_init_ranks(path):
    """Ranks used in constructor initializer lists near `path`.

    A member like `Shard() : mutex(lock_order::kLockRankQueue) {}` or an
    out-of-line constructor in the matching .cpp both count; scan the
    declaring file plus its sibling translation unit.
    """
    candidates = [path]
    stem, ext = os.path.splitext(path)
    sibling = stem + (".cpp" if ext == ".h" else ".h")
    if os.path.exists(sibling):
        candidates.append(sibling)
    inits = {}
    # mutex_name(lock_order::kLockRankFoo) — in an initializer list, i.e.
    # preceded by ':' or ',' somewhere before on the same statement.
    init_re = re.compile(
        r"[:,]\s*(?P<name>[A-Za-z_]\w*)\s*\(\s*lock_order::(?P<cls>kLockRank\w+)\s*\)"
    )
    for candidate in candidates:
        with open(candidate, encoding="utf-8") as f:
            text = strip_comments(f.read())
        for m in init_re.finditer(text):
            inits.setdefault(m.group("name"), set()).add(m.group("cls"))
    return inits


def decl_errors(rel, text, classes, inits_provider):
    """Lint the mutex declarations of one (comment-stripped) source text.

    `inits_provider` is called lazily (at most once) to get the
    constructor-initializer-list ranks for bare declarations.
    """
    errors = []
    inits = None
    for i, line in enumerate(text.splitlines(), 1):
        m = DECL_RE.match(line)
        if m is None:
            continue
        # References and parameters don't construct a mutex.
        if "&" in line.split(";")[0]:
            continue
        name = m.group("name")
        init = m.group("init") or ""
        used = RANK_USE_RE.search(init)
        if used:
            if used.group("cls") not in classes:
                errors.append(
                    f"{rel}:{i}: mutex '{name}' uses unregistered lock "
                    f"class {used.group('cls')}")
            continue
        if inits is None:
            inits = inits_provider()
        ctor_classes = inits.get(name, set())
        unknown = ctor_classes - classes
        if unknown:
            errors.append(
                f"{rel}:{i}: mutex '{name}' uses unregistered lock "
                f"class {', '.join(sorted(unknown))}")
        elif not ctor_classes:
            errors.append(
                f"{rel}:{i}: mutex '{name}' is not constructed from a "
                f"registered lock_order::kLockRank* class")
    return errors


def raw_mutex_errors(rel, text):
    errors = []
    for i, line in enumerate(text.splitlines(), 1):
        if RAW_MUTEX_RE.search(line):
            errors.append(
                f"{rel}:{i}: raw std::mutex bypasses lock-order "
                f"tracking — use versa::Mutex with a LockClass")
    return errors


# --self-test fixtures: (description, source line(s), ctor-initializer
# ranks, expected error substring or None). The synthetic class set is
# {kLockRankAlpha}; kLockRankBogus is deliberately unregistered. Every
# mutex type × initializer spelling that must stay covered is pinned here
# — if a regex change reopens the paren-init (or SharedMutex) hole, the
# "must flag" fixtures stop failing and the self-test exits 1.
SELF_TEST_CLASSES = {"kLockRankAlpha"}
SELF_TEST_FIXTURES = [
    ("brace-init Mutex with registered rank passes",
     "versa::Mutex mu_{lock_order::kLockRankAlpha};", {}, None),
    ("paren-init Mutex with registered rank passes",
     "versa::Mutex mu_(lock_order::kLockRankAlpha);", {}, None),
    ("paren-init SharedMutex with registered rank passes",
     "versa::SharedMutex mu(lock_order::kLockRankAlpha);", {}, None),
    ("brace-init RecursiveMutex with registered rank passes",
     "mutable versa::RecursiveMutex mu_{lock_order::kLockRankAlpha};",
     {}, None),
    ("bare Mutex with ctor-initializer rank passes",
     "versa::Mutex mu_;", {"mu_": {"kLockRankAlpha"}}, None),
    ("reference declarations are ignored",
     "versa::Mutex& other = peer.mu;", {}, None),
    ("default-constructed SharedMutex is flagged",
     "versa::SharedMutex mu_;", {},
     "not constructed from a registered"),
    ("default-constructed Mutex is flagged",
     "versa::Mutex mu_;", {},
     "not constructed from a registered"),
    ("brace-init with unregistered rank is flagged",
     "versa::Mutex mu_{lock_order::kLockRankBogus};", {},
     "unregistered lock class kLockRankBogus"),
    ("paren-init SharedMutex with unregistered rank is flagged",
     "versa::SharedMutex mu(lock_order::kLockRankBogus);", {},
     "unregistered lock class kLockRankBogus"),
    ("ctor-initializer with unregistered rank is flagged",
     "versa::Mutex mu_;", {"mu_": {"kLockRankBogus"}},
     "unregistered lock class kLockRankBogus"),
]


def run_self_test():
    failures = []
    for description, source, inits, expected in SELF_TEST_FIXTURES:
        errors = decl_errors("fixture", source, SELF_TEST_CLASSES,
                             lambda inits=inits: inits)
        if expected is None:
            if errors:
                failures.append(f"{description}: unexpected {errors}")
        elif not any(expected in error for error in errors):
            failures.append(
                f"{description}: expected an error containing "
                f"'{expected}', got {errors or 'no errors'}")
    raw = raw_mutex_errors("fixture", "std::mutex raw_;")
    if not any("bypasses lock-order" in error for error in raw):
        failures.append("raw std::mutex fixture was not flagged")
    if failures:
        print("check_lock_ranks --self-test: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_lock_ranks --self-test: OK "
          f"({len(SELF_TEST_FIXTURES) + 1} fixtures)")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return run_self_test()

    classes = registered_classes()
    if not classes:
        print("check_lock_ranks: no LockClass declarations found in "
              "src/util/lock_order.h", file=sys.stderr)
        return 1

    errors = rank_errors(classes)
    for path in source_files():
        rel = os.path.relpath(path, SRC)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments(raw)

        if rel not in RAW_MUTEX_ALLOWLIST:
            errors.extend(raw_mutex_errors(rel, text))
        errors.extend(
            decl_errors(rel, text, classes,
                        lambda path=path: ctor_init_ranks(path)))

    if errors:
        print("check_lock_ranks: FAIL — every versa::Mutex must name a "
              "registered LockClass rank:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1

    print(f"check_lock_ranks: OK ({len(classes)} registered lock classes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
