# Empty dependencies file for bench_fig15_pbpi_stats_loop2.
# This may be replaced when dependencies are built.
