file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_pbpi_stats_loop2.dir/bench_fig15_pbpi_stats_loop2.cpp.o"
  "CMakeFiles/bench_fig15_pbpi_stats_loop2.dir/bench_fig15_pbpi_stats_loop2.cpp.o.d"
  "bench_fig15_pbpi_stats_loop2"
  "bench_fig15_pbpi_stats_loop2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_pbpi_stats_loop2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
