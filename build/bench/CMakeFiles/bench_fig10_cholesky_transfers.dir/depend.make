# Empty dependencies file for bench_fig10_cholesky_transfers.
# This may be replaced when dependencies are built.
