file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cholesky_transfers.dir/bench_fig10_cholesky_transfers.cpp.o"
  "CMakeFiles/bench_fig10_cholesky_transfers.dir/bench_fig10_cholesky_transfers.cpp.o.d"
  "bench_fig10_cholesky_transfers"
  "bench_fig10_cholesky_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cholesky_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
