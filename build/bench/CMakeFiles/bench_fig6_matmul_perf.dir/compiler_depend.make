# Empty compiler generated dependencies file for bench_fig6_matmul_perf.
# This may be replaced when dependencies are built.
