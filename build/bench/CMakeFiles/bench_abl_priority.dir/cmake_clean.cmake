file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_priority.dir/bench_abl_priority.cpp.o"
  "CMakeFiles/bench_abl_priority.dir/bench_abl_priority.cpp.o.d"
  "bench_abl_priority"
  "bench_abl_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
