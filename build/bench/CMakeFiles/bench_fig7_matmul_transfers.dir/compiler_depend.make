# Empty compiler generated dependencies file for bench_fig7_matmul_transfers.
# This may be replaced when dependencies are built.
