file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_size_grouping.dir/bench_abl_size_grouping.cpp.o"
  "CMakeFiles/bench_abl_size_grouping.dir/bench_abl_size_grouping.cpp.o.d"
  "bench_abl_size_grouping"
  "bench_abl_size_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_size_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
