# Empty compiler generated dependencies file for bench_abl_size_grouping.
# This may be replaced when dependencies are built.
