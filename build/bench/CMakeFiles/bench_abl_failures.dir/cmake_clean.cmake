file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_failures.dir/bench_abl_failures.cpp.o"
  "CMakeFiles/bench_abl_failures.dir/bench_abl_failures.cpp.o.d"
  "bench_abl_failures"
  "bench_abl_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
