# Empty dependencies file for bench_abl_failures.
# This may be replaced when dependencies are built.
