file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_overlap.dir/bench_abl_overlap.cpp.o"
  "CMakeFiles/bench_abl_overlap.dir/bench_abl_overlap.cpp.o.d"
  "bench_abl_overlap"
  "bench_abl_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
