# Empty compiler generated dependencies file for bench_fig13_pbpi_transfers.
# This may be replaced when dependencies are built.
