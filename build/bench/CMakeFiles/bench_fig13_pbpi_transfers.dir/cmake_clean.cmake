file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pbpi_transfers.dir/bench_fig13_pbpi_transfers.cpp.o"
  "CMakeFiles/bench_fig13_pbpi_transfers.dir/bench_fig13_pbpi_transfers.cpp.o.d"
  "bench_fig13_pbpi_transfers"
  "bench_fig13_pbpi_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pbpi_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
