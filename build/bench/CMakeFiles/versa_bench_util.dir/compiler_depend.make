# Empty compiler generated dependencies file for versa_bench_util.
# This may be replaced when dependencies are built.
