file(REMOVE_RECURSE
  "../lib/libversa_bench_util.a"
  "../lib/libversa_bench_util.pdb"
  "CMakeFiles/versa_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/versa_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versa_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
