file(REMOVE_RECURSE
  "../lib/libversa_bench_util.a"
)
