file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_taskversionset.dir/bench_table1_taskversionset.cpp.o"
  "CMakeFiles/bench_table1_taskversionset.dir/bench_table1_taskversionset.cpp.o.d"
  "bench_table1_taskversionset"
  "bench_table1_taskversionset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_taskversionset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
