file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cholesky_stats.dir/bench_fig11_cholesky_stats.cpp.o"
  "CMakeFiles/bench_fig11_cholesky_stats.dir/bench_fig11_cholesky_stats.cpp.o.d"
  "bench_fig11_cholesky_stats"
  "bench_fig11_cholesky_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cholesky_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
