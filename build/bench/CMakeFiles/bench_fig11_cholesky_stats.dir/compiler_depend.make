# Empty compiler generated dependencies file for bench_fig11_cholesky_stats.
# This may be replaced when dependencies are built.
