file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_lambda.dir/bench_abl_lambda.cpp.o"
  "CMakeFiles/bench_abl_lambda.dir/bench_abl_lambda.cpp.o.d"
  "bench_abl_lambda"
  "bench_abl_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
