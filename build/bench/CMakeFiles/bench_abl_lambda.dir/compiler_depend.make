# Empty compiler generated dependencies file for bench_abl_lambda.
# This may be replaced when dependencies are built.
