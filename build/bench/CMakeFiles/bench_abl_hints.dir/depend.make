# Empty dependencies file for bench_abl_hints.
# This may be replaced when dependencies are built.
