file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hints.dir/bench_abl_hints.cpp.o"
  "CMakeFiles/bench_abl_hints.dir/bench_abl_hints.cpp.o.d"
  "bench_abl_hints"
  "bench_abl_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
