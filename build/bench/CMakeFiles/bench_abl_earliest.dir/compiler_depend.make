# Empty compiler generated dependencies file for bench_abl_earliest.
# This may be replaced when dependencies are built.
