file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_earliest.dir/bench_abl_earliest.cpp.o"
  "CMakeFiles/bench_abl_earliest.dir/bench_abl_earliest.cpp.o.d"
  "bench_abl_earliest"
  "bench_abl_earliest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_earliest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
