# Empty compiler generated dependencies file for bench_ext_sparselu.
# This may be replaced when dependencies are built.
