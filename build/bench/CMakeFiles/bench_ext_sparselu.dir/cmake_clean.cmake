file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sparselu.dir/bench_ext_sparselu.cpp.o"
  "CMakeFiles/bench_ext_sparselu.dir/bench_ext_sparselu.cpp.o.d"
  "bench_ext_sparselu"
  "bench_ext_sparselu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sparselu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
