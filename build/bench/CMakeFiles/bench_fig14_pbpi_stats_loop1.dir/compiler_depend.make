# Empty compiler generated dependencies file for bench_fig14_pbpi_stats_loop1.
# This may be replaced when dependencies are built.
