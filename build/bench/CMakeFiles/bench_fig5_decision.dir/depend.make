# Empty dependencies file for bench_fig5_decision.
# This may be replaced when dependencies are built.
