file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_decision.dir/bench_fig5_decision.cpp.o"
  "CMakeFiles/bench_fig5_decision.dir/bench_fig5_decision.cpp.o.d"
  "bench_fig5_decision"
  "bench_fig5_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
