# Empty compiler generated dependencies file for bench_abl_ema.
# This may be replaced when dependencies are built.
