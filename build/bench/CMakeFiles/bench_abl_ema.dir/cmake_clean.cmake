file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ema.dir/bench_abl_ema.cpp.o"
  "CMakeFiles/bench_abl_ema.dir/bench_abl_ema.cpp.o.d"
  "bench_abl_ema"
  "bench_abl_ema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
