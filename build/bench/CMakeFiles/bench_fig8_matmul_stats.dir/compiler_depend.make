# Empty compiler generated dependencies file for bench_fig8_matmul_stats.
# This may be replaced when dependencies are built.
