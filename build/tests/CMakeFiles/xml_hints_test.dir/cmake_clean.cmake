file(REMOVE_RECURSE
  "CMakeFiles/xml_hints_test.dir/xml_hints_test.cpp.o"
  "CMakeFiles/xml_hints_test.dir/xml_hints_test.cpp.o.d"
  "xml_hints_test"
  "xml_hints_test.pdb"
  "xml_hints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_hints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
