# Empty compiler generated dependencies file for xml_hints_test.
# This may be replaced when dependencies are built.
