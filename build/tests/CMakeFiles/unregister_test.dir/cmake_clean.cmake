file(REMOVE_RECURSE
  "CMakeFiles/unregister_test.dir/unregister_test.cpp.o"
  "CMakeFiles/unregister_test.dir/unregister_test.cpp.o.d"
  "unregister_test"
  "unregister_test.pdb"
  "unregister_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unregister_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
