# Empty compiler generated dependencies file for unregister_test.
# This may be replaced when dependencies are built.
