# Empty compiler generated dependencies file for machine_file_test.
# This may be replaced when dependencies are built.
