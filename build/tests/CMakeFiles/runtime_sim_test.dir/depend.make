# Empty dependencies file for runtime_sim_test.
# This may be replaced when dependencies are built.
