file(REMOVE_RECURSE
  "CMakeFiles/runtime_sim_test.dir/runtime_sim_test.cpp.o"
  "CMakeFiles/runtime_sim_test.dir/runtime_sim_test.cpp.o.d"
  "runtime_sim_test"
  "runtime_sim_test.pdb"
  "runtime_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
