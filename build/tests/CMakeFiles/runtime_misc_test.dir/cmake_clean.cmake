file(REMOVE_RECURSE
  "CMakeFiles/runtime_misc_test.dir/runtime_misc_test.cpp.o"
  "CMakeFiles/runtime_misc_test.dir/runtime_misc_test.cpp.o.d"
  "runtime_misc_test"
  "runtime_misc_test.pdb"
  "runtime_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
