# Empty dependencies file for runtime_misc_test.
# This may be replaced when dependencies are built.
