file(REMOVE_RECURSE
  "CMakeFiles/runtime_thread_test.dir/runtime_thread_test.cpp.o"
  "CMakeFiles/runtime_thread_test.dir/runtime_thread_test.cpp.o.d"
  "runtime_thread_test"
  "runtime_thread_test.pdb"
  "runtime_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
