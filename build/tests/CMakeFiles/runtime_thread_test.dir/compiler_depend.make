# Empty compiler generated dependencies file for runtime_thread_test.
# This may be replaced when dependencies are built.
