# Empty dependencies file for sparselu_test.
# This may be replaced when dependencies are built.
