file(REMOVE_RECURSE
  "CMakeFiles/sparselu_test.dir/sparselu_test.cpp.o"
  "CMakeFiles/sparselu_test.dir/sparselu_test.cpp.o.d"
  "sparselu_test"
  "sparselu_test.pdb"
  "sparselu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparselu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
