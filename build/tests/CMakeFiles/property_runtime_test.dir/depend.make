# Empty dependencies file for property_runtime_test.
# This may be replaced when dependencies are built.
