# Empty compiler generated dependencies file for versioning_internals_test.
# This may be replaced when dependencies are built.
