file(REMOVE_RECURSE
  "CMakeFiles/versioning_internals_test.dir/versioning_internals_test.cpp.o"
  "CMakeFiles/versioning_internals_test.dir/versioning_internals_test.cpp.o.d"
  "versioning_internals_test"
  "versioning_internals_test.pdb"
  "versioning_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioning_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
