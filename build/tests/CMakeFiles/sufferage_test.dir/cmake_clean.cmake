file(REMOVE_RECURSE
  "CMakeFiles/sufferage_test.dir/sufferage_test.cpp.o"
  "CMakeFiles/sufferage_test.dir/sufferage_test.cpp.o.d"
  "sufferage_test"
  "sufferage_test.pdb"
  "sufferage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sufferage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
