# Empty dependencies file for sufferage_test.
# This may be replaced when dependencies are built.
