# Empty compiler generated dependencies file for directory_property_test.
# This may be replaced when dependencies are built.
