file(REMOVE_RECURSE
  "CMakeFiles/directory_property_test.dir/directory_property_test.cpp.o"
  "CMakeFiles/directory_property_test.dir/directory_property_test.cpp.o.d"
  "directory_property_test"
  "directory_property_test.pdb"
  "directory_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
