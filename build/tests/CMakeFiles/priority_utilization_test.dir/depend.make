# Empty dependencies file for priority_utilization_test.
# This may be replaced when dependencies are built.
