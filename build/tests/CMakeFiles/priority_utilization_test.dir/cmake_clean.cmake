file(REMOVE_RECURSE
  "CMakeFiles/priority_utilization_test.dir/priority_utilization_test.cpp.o"
  "CMakeFiles/priority_utilization_test.dir/priority_utilization_test.cpp.o.d"
  "priority_utilization_test"
  "priority_utilization_test.pdb"
  "priority_utilization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_utilization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
