# Empty compiler generated dependencies file for versa.
# This may be replaced when dependencies are built.
