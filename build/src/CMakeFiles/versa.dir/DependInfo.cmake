
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cholesky.cpp" "src/CMakeFiles/versa.dir/apps/cholesky.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/cholesky.cpp.o.d"
  "/root/repo/src/apps/jacobi.cpp" "src/CMakeFiles/versa.dir/apps/jacobi.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/jacobi.cpp.o.d"
  "/root/repo/src/apps/kernels.cpp" "src/CMakeFiles/versa.dir/apps/kernels.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/kernels.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/CMakeFiles/versa.dir/apps/matmul.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/matmul.cpp.o.d"
  "/root/repo/src/apps/pbpi.cpp" "src/CMakeFiles/versa.dir/apps/pbpi.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/pbpi.cpp.o.d"
  "/root/repo/src/apps/sparselu.cpp" "src/CMakeFiles/versa.dir/apps/sparselu.cpp.o" "gcc" "src/CMakeFiles/versa.dir/apps/sparselu.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/versa.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/versa.dir/common/log.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/versa.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/versa.dir/common/random.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/versa.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/versa.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/versa.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/versa.dir/common/string_util.cpp.o.d"
  "/root/repo/src/data/data_region.cpp" "src/CMakeFiles/versa.dir/data/data_region.cpp.o" "gcc" "src/CMakeFiles/versa.dir/data/data_region.cpp.o.d"
  "/root/repo/src/data/directory.cpp" "src/CMakeFiles/versa.dir/data/directory.cpp.o" "gcc" "src/CMakeFiles/versa.dir/data/directory.cpp.o.d"
  "/root/repo/src/data/transfer_engine.cpp" "src/CMakeFiles/versa.dir/data/transfer_engine.cpp.o" "gcc" "src/CMakeFiles/versa.dir/data/transfer_engine.cpp.o.d"
  "/root/repo/src/data/transfer_stats.cpp" "src/CMakeFiles/versa.dir/data/transfer_stats.cpp.o" "gcc" "src/CMakeFiles/versa.dir/data/transfer_stats.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/versa.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/versa.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/sim_executor.cpp" "src/CMakeFiles/versa.dir/exec/sim_executor.cpp.o" "gcc" "src/CMakeFiles/versa.dir/exec/sim_executor.cpp.o.d"
  "/root/repo/src/exec/thread_executor.cpp" "src/CMakeFiles/versa.dir/exec/thread_executor.cpp.o" "gcc" "src/CMakeFiles/versa.dir/exec/thread_executor.cpp.o.d"
  "/root/repo/src/machine/cost_model.cpp" "src/CMakeFiles/versa.dir/machine/cost_model.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/cost_model.cpp.o.d"
  "/root/repo/src/machine/device.cpp" "src/CMakeFiles/versa.dir/machine/device.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/device.cpp.o.d"
  "/root/repo/src/machine/interconnect.cpp" "src/CMakeFiles/versa.dir/machine/interconnect.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/interconnect.cpp.o.d"
  "/root/repo/src/machine/kernel_models.cpp" "src/CMakeFiles/versa.dir/machine/kernel_models.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/kernel_models.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/versa.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/machine.cpp.o.d"
  "/root/repo/src/machine/machine_file.cpp" "src/CMakeFiles/versa.dir/machine/machine_file.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/machine_file.cpp.o.d"
  "/root/repo/src/machine/memory_space.cpp" "src/CMakeFiles/versa.dir/machine/memory_space.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/memory_space.cpp.o.d"
  "/root/repo/src/machine/presets.cpp" "src/CMakeFiles/versa.dir/machine/presets.cpp.o" "gcc" "src/CMakeFiles/versa.dir/machine/presets.cpp.o.d"
  "/root/repo/src/perf/calibrate.cpp" "src/CMakeFiles/versa.dir/perf/calibrate.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/calibrate.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/CMakeFiles/versa.dir/perf/report.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/report.cpp.o.d"
  "/root/repo/src/perf/run_stats.cpp" "src/CMakeFiles/versa.dir/perf/run_stats.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/run_stats.cpp.o.d"
  "/root/repo/src/perf/timeline.cpp" "src/CMakeFiles/versa.dir/perf/timeline.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/timeline.cpp.o.d"
  "/root/repo/src/perf/trace.cpp" "src/CMakeFiles/versa.dir/perf/trace.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/trace.cpp.o.d"
  "/root/repo/src/perf/utilization.cpp" "src/CMakeFiles/versa.dir/perf/utilization.cpp.o" "gcc" "src/CMakeFiles/versa.dir/perf/utilization.cpp.o.d"
  "/root/repo/src/runtime/config.cpp" "src/CMakeFiles/versa.dir/runtime/config.cpp.o" "gcc" "src/CMakeFiles/versa.dir/runtime/config.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/versa.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/versa.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/sched/affinity_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/affinity_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/affinity_scheduler.cpp.o.d"
  "/root/repo/src/sched/dep_aware_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/dep_aware_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/dep_aware_scheduler.cpp.o.d"
  "/root/repo/src/sched/fifo_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/fifo_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/fifo_scheduler.cpp.o.d"
  "/root/repo/src/sched/hints_file.cpp" "src/CMakeFiles/versa.dir/sched/hints_file.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/hints_file.cpp.o.d"
  "/root/repo/src/sched/locality_versioning_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/locality_versioning_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/locality_versioning_scheduler.cpp.o.d"
  "/root/repo/src/sched/profile_table.cpp" "src/CMakeFiles/versa.dir/sched/profile_table.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/profile_table.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/versa.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/scheduler_factory.cpp" "src/CMakeFiles/versa.dir/sched/scheduler_factory.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/scheduler_factory.cpp.o.d"
  "/root/repo/src/sched/sufferage_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/sufferage_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/sufferage_scheduler.cpp.o.d"
  "/root/repo/src/sched/versioning_scheduler.cpp" "src/CMakeFiles/versa.dir/sched/versioning_scheduler.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/versioning_scheduler.cpp.o.d"
  "/root/repo/src/sched/xml_hints.cpp" "src/CMakeFiles/versa.dir/sched/xml_hints.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sched/xml_hints.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/versa.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/versa.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/versa.dir/sim/noise.cpp.o.d"
  "/root/repo/src/task/access.cpp" "src/CMakeFiles/versa.dir/task/access.cpp.o" "gcc" "src/CMakeFiles/versa.dir/task/access.cpp.o.d"
  "/root/repo/src/task/dependency_analyzer.cpp" "src/CMakeFiles/versa.dir/task/dependency_analyzer.cpp.o" "gcc" "src/CMakeFiles/versa.dir/task/dependency_analyzer.cpp.o.d"
  "/root/repo/src/task/task.cpp" "src/CMakeFiles/versa.dir/task/task.cpp.o" "gcc" "src/CMakeFiles/versa.dir/task/task.cpp.o.d"
  "/root/repo/src/task/task_graph.cpp" "src/CMakeFiles/versa.dir/task/task_graph.cpp.o" "gcc" "src/CMakeFiles/versa.dir/task/task_graph.cpp.o.d"
  "/root/repo/src/task/version_registry.cpp" "src/CMakeFiles/versa.dir/task/version_registry.cpp.o" "gcc" "src/CMakeFiles/versa.dir/task/version_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
