file(REMOVE_RECURSE
  "libversa.a"
)
