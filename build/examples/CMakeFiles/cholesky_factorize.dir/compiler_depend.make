# Empty compiler generated dependencies file for cholesky_factorize.
# This may be replaced when dependencies are built.
