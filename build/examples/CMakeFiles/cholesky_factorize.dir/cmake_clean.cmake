file(REMOVE_RECURSE
  "CMakeFiles/cholesky_factorize.dir/cholesky_factorize.cpp.o"
  "CMakeFiles/cholesky_factorize.dir/cholesky_factorize.cpp.o.d"
  "cholesky_factorize"
  "cholesky_factorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_factorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
