# Empty compiler generated dependencies file for matmul_hybrid.
# This may be replaced when dependencies are built.
