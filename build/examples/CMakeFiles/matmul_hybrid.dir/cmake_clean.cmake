file(REMOVE_RECURSE
  "CMakeFiles/matmul_hybrid.dir/matmul_hybrid.cpp.o"
  "CMakeFiles/matmul_hybrid.dir/matmul_hybrid.cpp.o.d"
  "matmul_hybrid"
  "matmul_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
