# Empty dependencies file for versa_run.
# This may be replaced when dependencies are built.
