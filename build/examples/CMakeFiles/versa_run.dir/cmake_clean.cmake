file(REMOVE_RECURSE
  "CMakeFiles/versa_run.dir/versa_run.cpp.o"
  "CMakeFiles/versa_run.dir/versa_run.cpp.o.d"
  "versa_run"
  "versa_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versa_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
