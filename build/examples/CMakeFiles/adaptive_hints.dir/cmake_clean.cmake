file(REMOVE_RECURSE
  "CMakeFiles/adaptive_hints.dir/adaptive_hints.cpp.o"
  "CMakeFiles/adaptive_hints.dir/adaptive_hints.cpp.o.d"
  "adaptive_hints"
  "adaptive_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
