# Empty dependencies file for adaptive_hints.
# This may be replaced when dependencies are built.
