file(REMOVE_RECURSE
  "CMakeFiles/pbpi_mcmc.dir/pbpi_mcmc.cpp.o"
  "CMakeFiles/pbpi_mcmc.dir/pbpi_mcmc.cpp.o.d"
  "pbpi_mcmc"
  "pbpi_mcmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpi_mcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
