# Empty dependencies file for pbpi_mcmc.
# This may be replaced when dependencies are built.
