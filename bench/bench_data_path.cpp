// Micro-benchmarks (google-benchmark) for the concurrent data path:
// how fast placement code can price transfers now that directory
// lookups no longer ride the runtime lock.
//
// The headline comparison is BM_TransferCostSharded (the sharded,
// epoch-versioned read path, N threads querying at once) against
// BM_TransferCostGlobalMutex, which re-creates the pre-refactor
// arrangement where every lookup serialized on one big mutex — the
// sharded path should hold per-thread throughput roughly flat from 1
// to 8 threads while the global-mutex baseline collapses.
// BM_ReadersUnderChurn keeps one thread mutating the directory while
// the rest read, exercising the seqlock retry path that placement's
// epoch re-validation depends on.
#include <benchmark/benchmark.h>

#include "bench_context.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/directory.h"
#include "machine/presets.h"

namespace versa {
namespace {

constexpr std::size_t kRegions = 64;
constexpr std::uint64_t kRegionBytes = 1 << 20;
constexpr std::size_t kProbes = 256;  // precomputed queries per thread

/// One directory shared by every thread of a benchmark run, pre-seeded
/// with copies scattered across the device spaces so transfer_cost has
/// real link arithmetic to do.
struct SharedDirectory {
  Machine machine = make_minotauro_node(2, 2);
  DataDirectory directory{machine};
  std::vector<RegionId> regions;
  std::vector<SpaceId> device_spaces;

  SharedDirectory() {
    for (std::size_t s = 0; s < machine.space_count(); ++s) {
      if (s != kHostSpace) device_spaces.push_back(static_cast<SpaceId>(s));
    }
    TransferList ops;
    for (std::size_t r = 0; r < kRegions; ++r) {
      regions.push_back(
          directory.register_region("r" + std::to_string(r), kRegionBytes));
      const SpaceId space = device_spaces[r % device_spaces.size()];
      const AccessList accesses = {r % 3 == 0 ? Access::inout(regions.back())
                                              : Access::in(regions.back())};
      directory.acquire(accesses, space, ops);
      ops.clear();
    }
  }
};

SharedDirectory& shared() {
  static SharedDirectory instance;
  return instance;
}

/// Per-thread probe set, built outside the timed loop so the hot loop
/// is nothing but the directory query.
std::vector<std::pair<AccessList, SpaceId>> make_probes(int thread_index) {
  SharedDirectory& sh = shared();
  Rng rng(7u + static_cast<std::uint64_t>(thread_index));
  std::vector<std::pair<AccessList, SpaceId>> probes;
  probes.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    const RegionId a = sh.regions[rng.next_below(kRegions)];
    const RegionId b = sh.regions[rng.next_below(kRegions)];
    AccessList accesses = {Access::in(a)};
    if (b != a) accesses.push_back(Access::in(b));
    const SpaceId space = static_cast<SpaceId>(
        rng.next_below(sh.machine.space_count()));
    probes.emplace_back(std::move(accesses), space);
  }
  return probes;
}

void BM_TransferCostSharded(benchmark::State& state) {
  SharedDirectory& sh = shared();
  const auto probes = make_probes(state.thread_index());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [accesses, space] = probes[i++ % kProbes];
    benchmark::DoNotOptimize(sh.directory.transfer_cost(accesses, space));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferCostSharded)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Pre-refactor model: every lookup took the runtime lock, so reads
/// from all workers serialized on a single mutex.
void BM_TransferCostGlobalMutex(benchmark::State& state) {
  static std::mutex runtime_mutex;
  SharedDirectory& sh = shared();
  const auto probes = make_probes(state.thread_index());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [accesses, space] = probes[i++ % kProbes];
    std::lock_guard<std::mutex> lock(runtime_mutex);
    benchmark::DoNotOptimize(sh.directory.transfer_cost(accesses, space));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferCostGlobalMutex)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Thread 0 mutates (read-mode acquires bouncing copies between
/// spaces), the rest price transfers concurrently: read throughput
/// under writer churn, i.e. the seqlock retry + epoch re-validation
/// regime placement actually runs in.
void BM_ReadersUnderChurn(benchmark::State& state) {
  SharedDirectory& sh = shared();
  if (state.thread_index() == 0) {
    TransferList ops;
    std::size_t i = 0;
    for (auto _ : state) {
      const RegionId region = sh.regions[i % kRegions];
      const SpaceId space = sh.device_spaces[i % sh.device_spaces.size()];
      ++i;
      const AccessList accesses = {Access::in(region)};
      sh.directory.acquire(accesses, space, ops);
      ops.clear();
    }
  } else {
    const auto probes = make_probes(state.thread_index());
    std::size_t i = 0;
    for (auto _ : state) {
      const auto& [accesses, space] = probes[i++ % kProbes];
      benchmark::DoNotOptimize(sh.directory.transfer_cost(accesses, space));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadersUnderChurn)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// --- Concurrent mutators: per-shard epochs vs the global-epoch path ----
//
// Each thread owns a disjoint region pair and performs inout acquires
// bouncing between the two device spaces. With capacity-0 (uncapped)
// spaces the directory routes acquires through the parallel mutator path
// (shared lock + per-shard epoch marks), so disjoint-region mutators
// commit concurrently; with capped spaces every acquire takes the
// directory lock exclusively and ticks the global epoch — the
// pre-per-shard arrangement. The per-shard curve should scale with
// threads while the exclusive baseline serializes.

constexpr std::size_t kMutatorMaxThreads = 8;
constexpr std::size_t kMutatorRegionsPerThread = 2;

Machine make_mutator_machine(std::uint64_t capacity) {
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", capacity);
  const SpaceId g1 = builder.add_space("g1", capacity);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 1e-5);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 1e-5);
  builder.add_bidi_link(g0, g1, 1e9, 1e-5);
  return builder.build();
}

struct MutatorPool {
  Machine machine;
  DataDirectory directory;
  std::vector<RegionId> regions;

  explicit MutatorPool(std::uint64_t capacity)
      : machine(make_mutator_machine(capacity)), directory(machine) {
    for (std::size_t r = 0;
         r < kMutatorMaxThreads * kMutatorRegionsPerThread; ++r) {
      regions.push_back(
          directory.register_region("m" + std::to_string(r), 1 << 12));
    }
  }
};

void run_mutators(benchmark::State& state, MutatorPool& pool) {
  // Disjoint ownership: thread t mutates only its own region pair, so
  // with per-shard epochs the acquires have no logical conflicts.
  const std::size_t base = static_cast<std::size_t>(state.thread_index()) *
                           kMutatorRegionsPerThread;
  const AccessList accesses = {Access::inout(pool.regions[base]),
                               Access::inout(pool.regions[base + 1])};
  TransferList ops;
  std::size_t i = 0;
  for (auto _ : state) {
    const SpaceId space = static_cast<SpaceId>(1 + (i++ & 1));
    pool.directory.acquire(accesses, space, ops);
    ops.clear();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ConcurrentMutatorsPerShard(benchmark::State& state) {
  static MutatorPool pool(0);  // uncapped -> parallel mutator path
  run_mutators(state, pool);
}
BENCHMARK(BM_ConcurrentMutatorsPerShard)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Baseline: capped spaces force every acquire through the exclusive
/// directory lock + global epoch tick (capacity far above the working
/// set, so no eviction runs — only the locking regime differs).
void BM_ConcurrentMutatorsGlobalEpoch(benchmark::State& state) {
  static MutatorPool pool(1ull << 40);
  run_mutators(state, pool);
}
BENCHMARK(BM_ConcurrentMutatorsGlobalEpoch)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace versa

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  versa::bench::report_hardware_concurrency();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
