// Ablation — the learning threshold λ (§IV-B footnote 4: "this threshold
// can be configured by the user").
//
// Sweeps λ on the hybrid matrix multiplication (8 SMP + 2 GPU). Small λ
// ends the learning phase quickly but trusts noisy means; large λ wastes
// runs of the slow implementations before the reliable phase starts.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf("Ablation: learning threshold lambda (mm-hyb, 8 SMP + 2 GPU)\n\n");

  TablePrinter table({"lambda", "GFLOP/s", "CUBLAS %", "CUDA %", "CBLAS %"});
  for (const std::uint32_t lambda : {1u, 2u, 3u, 5u, 10u, 20u}) {
    RunOptions options;
    options.smp = 8;
    options.gpus = 2;
    options.scheduler = "versioning";
    options.profile.lambda = lambda;
    const AppResult result = run_matmul(options, /*hybrid=*/true);
    table.add_row({std::to_string(lambda), format_double(result.gflops, 1),
                   format_double(result.shares[0].percent, 1),
                   format_double(result.shares[1].percent, 1),
                   format_double(result.shares[2].percent, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
