// Figure 8 — Matrix multiplication task statistics for the versioning
// scheduler: the share of mm-hyb tile tasks executed by each of the three
// implementations (CUBLAS on GPU, hand-coded CUDA on GPU, CBLAS on SMP)
// for every resource configuration.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf(
      "Figure 8: matmul task statistics for the versioning scheduler\n"
      "(percentage of mm-hyb tile tasks run by each implementation)\n\n");

  TablePrinter table({"config", "CUBLAS %", "CUDA %", "SMP(CBLAS) %",
                      "tasks"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;
    options.scheduler = "versioning";
    const AppResult result = run_matmul(options, /*hybrid=*/true);
    table.add_row({config_label(rc),
                   format_double(result.shares[0].percent, 1),
                   format_double(result.shares[1].percent, 1),
                   format_double(result.shares[2].percent, 1),
                   std::to_string(result.tasks)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
