// Thread-scaling micro-benchmark for the ThreadExecutor lock split
// (google-benchmark, --benchmark_* flags apply).
//
// The comparison that motivated the split: BM_PopSharded drives the
// sharded WorkerQueues fast path (one kLockRankQueue mutex per worker, as
// used by Scheduler::try_pop_queued), BM_PopSingleLock is a faithful
// in-bench model of the pre-split dequeue — the same per-worker deques,
// but every push/pop serialized on one global mutex the way the runtime
// lock used to serialize them. Each measured op is one push + one pop on
// the thread's own worker queue, i.e. the steady-state executor hot loop;
// ->ThreadRange(1, 8) scales the contending worker count. The acceptance
// bar from the lock-split work: sharded pop throughput at 8 threads is
// >= 3x the single-lock baseline (items_per_second, aggregated over
// threads by the framework).
//
// BM_PopShardedWithSteals mixes one steal_back from the next worker into
// every eighth op to show the split survives the stealing path without
// collapsing (two shards touched, still no global serialization).
//
// The PR-4 producer-side pair: BM_SubmitBuffered drives buffer_push (the
// kLockRankSubmit submission buffer) with a drain + pop-all every 16
// submissions, i.e. the round-boundary publish; BM_SubmitRuntimeLock is
// the pre-split producer — every push priority-inserted under one global
// mutex the way push_to_worker used to ride the runtime lock. Acceptance
// bar: buffered submission throughput beats the runtime-lock model from
// 4 producers up.
//
// Caveat for single-CPU hosts (some CI containers): with one core there
// is no parallelism for a lock split to reclaim — contended threads
// sleep on the futex and the lock holder runs uninterrupted, so the
// global-mutex baselines flat-line at their 1-thread rate while the
// uncontended sharded/buffered paths pay the timeslice round-robin tax.
// On such hosts the split paths measure within noise of (or behind) the
// global-mutex models at every thread count; the multi-producer bars are
// meaningful on multicore hardware only. A committed
// BENCH_thread_scale.json records which kind of host produced it in its
// context block (num_cpus).
#include <benchmark/benchmark.h>

#include <deque>
#include <mutex>
#include <vector>

#include "bench_context.h"
#include "sched/core/worker_queues.h"
#include "util/lock_order.h"

namespace versa::core {
namespace {

constexpr std::size_t kMaxThreads = 8;

QueueEntry make_entry(TaskId id) {
  QueueEntry e;
  e.id = id;
  e.type = 1;
  e.version = 1;
  e.priority = 0;
  e.estimate = 1e-3;
  return e;
}

/// The pre-split shape: per-worker deques behind ONE mutex (the global
/// runtime lock's role in the old dequeue path).
class SingleLockQueues {
 public:
  explicit SingleLockQueues(std::size_t workers) : queues_(workers) {}

  void push(WorkerId worker, const QueueEntry& entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& q = queues_[worker];
    // Same priority-insertion walk as WorkerQueues (trivial at equal
    // priority, but the baseline must pay for the same semantics).
    auto it = q.end();
    while (it != q.begin() && (it - 1)->priority < entry.priority) {
      --it;
    }
    q.insert(it, entry);
  }

  bool pop_front(WorkerId worker, QueueEntry& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& q = queues_[worker];
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }

 private:
  std::mutex mutex_;
  std::vector<std::deque<QueueEntry>> queues_;
};

void BM_PopSharded(benchmark::State& state) {
  // Function-local static: initialized once, thread-safely, before any
  // benchmark thread enters the loop. Every thread works its own shard,
  // so shards come back empty between runs.
  static WorkerQueues* queues = [] {
    auto* q = new WorkerQueues;
    q->reset(kMaxThreads);
    return q;
  }();
  const WorkerId worker = static_cast<WorkerId>(state.thread_index());
  TaskId next = 1;
  for (auto _ : state) {
    queues->push(worker, make_entry(next++));
    benchmark::DoNotOptimize(queues->pop_front(worker));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PopSharded)->ThreadRange(1, kMaxThreads)->UseRealTime();

void BM_PopSingleLock(benchmark::State& state) {
  static SingleLockQueues* queues = [] {
    return new SingleLockQueues(kMaxThreads);
  }();
  const WorkerId worker = static_cast<WorkerId>(state.thread_index());
  TaskId next = 1;
  QueueEntry out;
  for (auto _ : state) {
    queues->push(worker, make_entry(next++));
    benchmark::DoNotOptimize(queues->pop_front(worker, out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PopSingleLock)->ThreadRange(1, kMaxThreads)->UseRealTime();

void BM_PopShardedWithSteals(benchmark::State& state) {
  static WorkerQueues* queues = [] {
    auto* q = new WorkerQueues;
    q->reset(kMaxThreads);
    return q;
  }();
  const WorkerId worker = static_cast<WorkerId>(state.thread_index());
  const WorkerId victim =
      static_cast<WorkerId>((state.thread_index() + 1) % state.threads());
  TaskId next = 1;
  int op = 0;
  for (auto _ : state) {
    queues->push(worker, make_entry(next++));
    if (++op % 8 == 0) {
      benchmark::DoNotOptimize(queues->steal_back(victim));
      // The steal may have raced away this thread's entry or taken the
      // victim's; drain our own front either way to stay in steady state.
      benchmark::DoNotOptimize(queues->pop_front(worker));
    } else {
      benchmark::DoNotOptimize(queues->pop_front(worker));
    }
  }
  // Leave no entries behind for the next thread-count run.
  while (queues->pop_front(worker)) {
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PopShardedWithSteals)->ThreadRange(1, kMaxThreads)->UseRealTime();

void BM_SubmitBuffered(benchmark::State& state) {
  // The post-split producer: append to the shard's submission buffer (its
  // own kLockRankSubmit mutex, no queue-mutex contention), publish with a
  // drain every 16 submissions — the round-boundary cadence — and pop the
  // batch back out to stay in steady state.
  static WorkerQueues* queues = [] {
    auto* q = new WorkerQueues;
    q->reset(kMaxThreads);
    return q;
  }();
  const WorkerId worker = static_cast<WorkerId>(state.thread_index());
  TaskId next = 1;
  int op = 0;
  for (auto _ : state) {
    queues->buffer_push(worker, make_entry(next++));
    if (++op % 16 == 0) {
      queues->drain(worker);
      while (queues->pop_front(worker)) {
      }
    }
  }
  queues->drain(worker);
  while (queues->pop_front(worker)) {
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitBuffered)->ThreadRange(1, kMaxThreads)->UseRealTime();

void BM_SubmitRuntimeLock(benchmark::State& state) {
  // The pre-split producer: every submission priority-inserts under ONE
  // global mutex (the runtime lock's role in the old push_to_worker), with
  // the same batch-of-16 pop to mirror the buffered loop's consumption.
  static SingleLockQueues* queues = [] {
    return new SingleLockQueues(kMaxThreads);
  }();
  const WorkerId worker = static_cast<WorkerId>(state.thread_index());
  TaskId next = 1;
  int op = 0;
  QueueEntry out;
  for (auto _ : state) {
    queues->push(worker, make_entry(next++));
    if (++op % 16 == 0) {
      while (queues->pop_front(worker, out)) {
      }
    }
  }
  while (queues->pop_front(worker, out)) {
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitRuntimeLock)->ThreadRange(1, kMaxThreads)->UseRealTime();

}  // namespace
}  // namespace versa::core

int main(int argc, char** argv) {
  // Measure the mutexes, not the debug checker: the single-lock baseline
  // uses a raw std::mutex, so enforcement would bill the rank bookkeeping
  // to the sharded side only.
  versa::lock_order::set_enforced(false);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  versa::bench::report_hardware_concurrency();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
