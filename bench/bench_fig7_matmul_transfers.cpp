// Figure 7 — Data transferred for matrix multiplication.
//
// GA = mm-gpu under the affinity scheduler, GD = mm-gpu under the
// dependency-aware scheduler, HV = mm-hyb under the versioning scheduler.
// For each, the three categories of §V-A: Input Tx (host->GPU), Output Tx
// (GPU->host) and Device Tx (GPU->GPU).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

namespace {

std::string cell(std::uint64_t bytes) {
  return format_bytes(static_cast<double>(bytes));
}

}  // namespace

int main() {
  std::printf("Figure 7: data transferred for matrix multiplication\n\n");

  TablePrinter table({"config", "series", "Input Tx", "Output Tx",
                      "Device Tx", "total"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;

    options.scheduler = "affinity";
    const AppResult ga = run_matmul(options, false);
    options.scheduler = "dep-aware";
    const AppResult gd = run_matmul(options, false);
    options.scheduler = "versioning";
    const AppResult hv = run_matmul(options, true);

    const struct {
      const char* name;
      const TransferStats* tx;
    } rows[] = {{"GA", &ga.transfers}, {"GD", &gd.transfers},
                {"HV", &hv.transfers}};
    for (const auto& row : rows) {
      table.add_row({config_label(rc), row.name, cell(row.tx->input_bytes),
                     cell(row.tx->output_bytes), cell(row.tx->device_bytes),
                     cell(row.tx->total_bytes())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
