// Micro-benchmarks (google-benchmark) for the scheduling core: placement
// decisions per second at deep queue depths on a 24-worker node.
//
// The interesting comparison is BM_PlacementVersioning (incremental load
// account + finish-time index) against BM_PlacementLegacyRescan, a faithful
// in-bench reimplementation of the pre-refactor earliest-executor loop that
// recomputed every worker's busy time by rescanning its queue against the
// profile table on every decision — O(versions x workers x queue depth) per
// placement. Each measured step places one task and retires one from the
// receiving worker, so the queue depth stays pinned at the Arg value.
#include <benchmark/benchmark.h>

#include <deque>
#include <vector>

#include "machine/presets.h"
#include "sched/fifo_scheduler.h"
#include "sched/versioning_scheduler.h"

namespace versa {
namespace {

constexpr std::uint64_t kSize = 1 << 20;
constexpr int kBatch = 64;  // placements per benchmark iteration

/// A 24-worker fat node (16 cores + 8 GPUs) — bigger than the MinoTauro
/// preset allows, to stress the index at realistic future scale.
Machine make_fat_node() {
  Machine::Builder builder;
  builder.set_host_capacity(64ull << 30);
  for (std::size_t i = 0; i < 16; ++i) {
    const DeviceId core = builder.add_device(
        DeviceKind::kSmp, kHostSpace, "core-" + std::to_string(i), 10e9);
    builder.add_worker(core, "smp-" + std::to_string(i));
  }
  for (std::size_t g = 0; g < 8; ++g) {
    const SpaceId space =
        builder.add_space("gpu-mem-" + std::to_string(g), 6ull << 30);
    const DeviceId dev = builder.add_device(
        DeviceKind::kCuda, space, "gpu-" + std::to_string(g), 600e9);
    builder.add_worker(dev, "gpu-" + std::to_string(g));
    builder.add_bidi_link(kHostSpace, space, 6.0e9, 15e-6);
  }
  return builder.build();
}

/// Minimal SchedulerContext recording the last assignment target.
class BenchContext : public SchedulerContext {
 public:
  explicit BenchContext(Machine machine)
      : machine_(std::move(machine)), directory_(machine_) {
    type_ = registry_.declare_task("t");
    registry_.add_version(type_, DeviceKind::kSmp, "smp", nullptr, nullptr);
    registry_.add_version(type_, DeviceKind::kCuda, "gpu", nullptr, nullptr);
  }

  const Machine& machine() const override { return machine_; }
  const VersionRegistry& registry() const override { return registry_; }
  DataDirectory& directory() override { return directory_; }
  TaskGraph& graph() override { return graph_; }
  Time now() const override { return 0.0; }
  void task_assigned(TaskId, WorkerId worker) override {
    last_worker_ = worker;
  }

  Task& ready_task() {
    Task& task = graph_.create_task(type_, {}, kSize, "");
    task.state = TaskState::kReady;
    return task;
  }

  VersionRegistry registry_;
  Machine machine_;
  DataDirectory directory_;
  TaskGraph graph_;
  TaskTypeId type_ = kInvalidTaskType;
  WorkerId last_worker_ = kInvalidWorker;
};

/// Prime every version past λ so placement takes the reliable-phase
/// earliest-executor path (the hot path under study), with distinct means
/// so decisions are not degenerate.
void prime_reliable(ProfileTable& profile, const BenchContext& ctx) {
  Duration mean = 1e-3;
  for (VersionId v : ctx.registry_.versions(ctx.type_)) {
    profile.prime(ctx.type_, v, profile.group_key(kSize), mean, 16);
    mean *= 0.4;  // GPU version faster, as on the real node
  }
}

void BM_PlacementVersioning(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  BenchContext ctx(make_fat_node());
  VersioningScheduler sched;
  sched.attach(ctx);
  prime_reliable(sched.mutable_profile(), ctx);
  for (std::size_t i = 0; i < depth; ++i) {
    sched.task_ready(ctx.ready_task());
  }
  sched.ready_batch_done();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sched.task_ready(ctx.ready_task());
      // Retire one task from the receiving worker: depth stays constant.
      benchmark::DoNotOptimize(sched.pop_task(ctx.last_worker_));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_PlacementVersioning)->Arg(1000)->Arg(10000)->Arg(50000);

/// The pre-refactor decision loop, reimplemented verbatim as a baseline:
/// per placement, for every version and every compatible worker, busy time
/// is recomputed by walking the worker's queue and summing the current
/// profile means of the queued tasks.
struct LegacyRescanSched {
  struct Entry {
    TaskTypeId type;
    VersionId version;
    std::uint64_t size;
  };

  const Machine& machine;
  const VersionRegistry& registry;
  const ProfileTable& profile;
  std::vector<std::deque<Entry>> queues;

  LegacyRescanSched(const Machine& m, const VersionRegistry& r,
                    const ProfileTable& p)
      : machine(m), registry(r), profile(p), queues(m.worker_count()) {}

  Duration busy(WorkerId w) const {
    Duration sum = 0.0;
    for (const Entry& e : queues[w]) {
      sum += profile.mean(e.type, e.version, e.size).value_or(0.0);
    }
    return sum;
  }

  WorkerId place(TaskTypeId type, std::uint64_t size) {
    VersionId best_version = kInvalidVersion;
    WorkerId best_worker = kInvalidWorker;
    Duration best_finish = 0.0;
    for (VersionId v : registry.versions(type)) {
      const TaskVersion& version = registry.version(v);
      const Duration mean = profile.mean(type, v, size).value_or(0.0);
      for (const WorkerDesc& w : machine.workers()) {
        if (w.kind != version.device) continue;
        const Duration finish = busy(w.id) + mean;
        if (best_worker == kInvalidWorker || finish < best_finish) {
          best_finish = finish;
          best_version = v;
          best_worker = w.id;
        }
      }
    }
    queues[best_worker].push_back(Entry{type, best_version, size});
    return best_worker;
  }
};

void BM_PlacementLegacyRescan(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  BenchContext ctx(make_fat_node());
  VersioningScheduler donor;  // profile table with the same primed means
  donor.attach(ctx);
  prime_reliable(donor.mutable_profile(), ctx);
  LegacyRescanSched sched(ctx.machine_, ctx.registry_, donor.profile());
  for (std::size_t i = 0; i < depth; ++i) {
    sched.place(ctx.type_, kSize);
  }
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const WorkerId w = sched.place(ctx.type_, kSize);
      sched.queues[w].pop_front();
      benchmark::DoNotOptimize(sched.queues[w].size());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_PlacementLegacyRescan)->Arg(1000)->Arg(10000);

void BM_PlacementFifo(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  BenchContext ctx(make_fat_node());
  FifoScheduler sched;
  sched.attach(ctx);
  for (std::size_t i = 0; i < depth; ++i) {
    sched.task_ready(ctx.ready_task());
  }
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sched.task_ready(ctx.ready_task());
      benchmark::DoNotOptimize(sched.pop_task(0));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_PlacementFifo)->Arg(10000);

void BM_LeastBusyLookup(benchmark::State& state) {
  BenchContext ctx(make_fat_node());
  VersioningScheduler sched;
  sched.attach(ctx);
  prime_reliable(sched.mutable_profile(), ctx);
  for (std::size_t i = 0; i < 10000; ++i) {
    sched.task_ready(ctx.ready_task());
  }
  for (auto _ : state) {
    for (WorkerId w = 0; w < 24; ++w) {
      benchmark::DoNotOptimize(sched.estimated_busy(w));
    }
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_LeastBusyLookup);

}  // namespace
}  // namespace versa

BENCHMARK_MAIN();
