// Extension experiment — halo-exchange stencil across schedulers.
//
// Not a paper figure: a fourth workload probing a regime the paper's three
// applications avoid — iterative sweeps whose tasks each touch little data
// but *reuse* it every sweep, so placement stability (locality) dominates
// transfer volume. Compares all schedulers and shows where the §VII
// locality extension pays.
#include <cstdio>

#include "apps/jacobi.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

using namespace versa;

int main() {
  std::printf(
      "Extension: Jacobi heat stencil (64 MB domain, 32 slabs, 50 sweeps)\n"
      "4 SMP + 2 GPU; hybrid task versions where the scheduler supports "
      "them\n\n");

  TablePrinter table({"scheduler", "elapsed (ms)", "Input Tx", "Output Tx",
                      "Device Tx", "gpu/smp split"});
  for (const std::string& scheduler : scheduler_names()) {
    const Machine machine = make_minotauro_node(4, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = scheduler;
    config.profile.lambda = 2;
    Runtime rt(machine, config);

    apps::JacobiParams params;
    params.cells = 16 << 20;  // 64 MB per buffer
    params.slabs = 32;
    params.sweeps = 50;
    params.hybrid = true;
    apps::JacobiApp app(rt, params);
    app.run();

    const auto& tx = rt.transfer_stats();
    table.add_row(
        {scheduler, format_double(rt.elapsed() * 1e3, 2),
         format_bytes(static_cast<double>(tx.input_bytes)),
         format_bytes(static_cast<double>(tx.output_bytes)),
         format_bytes(static_cast<double>(tx.device_bytes)),
         std::to_string(rt.run_stats().count(app.gpu_version())) + "/" +
             std::to_string(rt.run_stats().count(app.smp_version()))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "baselines run only the main (GPU) implementation; the versioning\n"
      "schedulers split sweeps, and the locality variant does so without\n"
      "ping-ponging slabs between memory spaces.\n");
  return 0;
}
