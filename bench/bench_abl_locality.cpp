// Ablation — locality-aware versioning (§VII future work #1: "we are going
// to provide the versioning scheduler with data locality information").
//
// Workload: many independent chains, each repeatedly updating its own
// 16 MB buffer, on a 2-GPU node. The plain versioning scheduler ignores
// where a chain's data lives and bounces buffers between the GPUs
// (Device Tx); the locality-aware variant charges an estimated transfer
// penalty and keeps chains pinned, cutting transfers and time.
#include <cstdio>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct Outcome {
  double elapsed_ms;
  TransferStats tx;
};

Outcome run(const std::string& scheduler) {
  const Machine machine = make_minotauro_node(2, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  const TaskTypeId t = rt.declare_task("update");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_constant_cost(2e-3));
  rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                 make_constant_cost(30e-3));

  constexpr int kChains = 16;
  constexpr int kSteps = 40;
  std::vector<RegionId> buffers;
  for (int c = 0; c < kChains; ++c) {
    buffers.push_back(rt.register_data("buf" + std::to_string(c), 16 << 20));
  }
  for (int s = 0; s < kSteps; ++s) {
    for (int c = 0; c < kChains; ++c) {
      rt.submit(t, {Access::inout(buffers[c])});
    }
  }
  rt.taskwait();
  return {rt.elapsed() * 1e3, rt.transfer_stats()};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: locality-aware versioning (16 chains x 40 updates of a\n"
      "16 MB buffer each, 2 SMP + 2 GPU)\n\n");

  TablePrinter table({"scheduler", "elapsed", "Input Tx", "Output Tx",
                      "Device Tx"});
  for (const char* name : {"versioning", "versioning-locality"}) {
    const Outcome outcome = run(name);
    table.add_row(
        {name, format_double(outcome.elapsed_ms, 1) + " ms",
         format_bytes(static_cast<double>(outcome.tx.input_bytes)),
         format_bytes(static_cast<double>(outcome.tx.output_bytes)),
         format_bytes(static_cast<double>(outcome.tx.device_bytes))});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
