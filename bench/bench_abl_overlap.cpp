// Ablation — transfer/compute overlap + prefetch (§V-A: "we configured
// OmpSs to overlap data transfers with task execution ... combined with
// prefetching task data").
//
// Runs the three applications with the feature on and off. With overlap,
// a queued task's copies start the moment it is assigned, hiding PCIe
// time behind the running task; without it, every task stalls on its own
// copies first.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf("Ablation: transfer/compute overlap + prefetch (8 SMP + 2 GPU)\n\n");

  TablePrinter table({"application", "overlap on", "overlap off",
                      "slowdown"});
  RunOptions on;
  on.smp = 8;
  on.gpus = 2;
  RunOptions off = on;
  off.prefetch = false;

  {
    const AppResult a = run_matmul(on, true);
    const AppResult b = run_matmul(off, true);
    table.add_row({"matmul (mm-hyb-ver)",
                   format_double(a.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds / a.elapsed_seconds, 2) +
                       "x"});
  }
  {
    const AppResult a = run_cholesky(on, apps::PotrfVariant::kHybrid);
    const AppResult b = run_cholesky(off, apps::PotrfVariant::kHybrid);
    table.add_row({"cholesky (potrf-hyb-ver)",
                   format_double(a.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds / a.elapsed_seconds, 2) +
                       "x"});
  }
  {
    const AppResult a = run_pbpi(on, apps::PbpiVariant::kHybrid);
    const AppResult b = run_pbpi(off, apps::PbpiVariant::kHybrid);
    table.add_row({"pbpi (pbpi-hyb-ver)",
                   format_double(a.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds, 2) + " s",
                   format_double(b.elapsed_seconds / a.elapsed_seconds, 2) +
                       "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
