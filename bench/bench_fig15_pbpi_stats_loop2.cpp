// Figure 15 — PBPI task statistics (second computational loop) for the
// versioning scheduler: share of loop-2 tasks executed by the GPU and SMP
// versions of pbpi-hyb. The paper observes the loop-2 work is *shared*
// between GPU and SMP workers — thousands of SMP executions that balance
// the transfer/compute trade-off.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf(
      "Figure 15: PBPI loop-2 task statistics for the versioning "
      "scheduler\n(percentage of loop-2 tasks per implementation)\n\n");

  TablePrinter table({"config", "GPU %", "SMP %", "loop-2 tasks"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;
    options.scheduler = "versioning";
    const AppResult result =
        run_pbpi(options, apps::PbpiVariant::kHybrid, /*loop_of_interest=*/2);
    table.add_row({config_label(rc),
                   format_double(result.shares[0].percent, 1),
                   format_double(result.shares[1].percent, 1),
                   std::to_string(result.shares[0].count +
                                  result.shares[1].count)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
