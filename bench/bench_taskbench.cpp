// Micro-benchmarks for the synthetic workload generator (src/taskbench):
// graph generation, closure construction, and end-to-end runtime overhead
// per task when a generated graph flows through submit/analyze/schedule/
// execute on both backends. The per-task numbers here are the raw
// material METG is made of — if bench_taskbench regresses, every METG
// figure shifts.
#include <benchmark/benchmark.h>

#include "bench_context.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "taskbench/graph_spec.h"
#include "taskbench/runner.h"

namespace {

using namespace versa;
using namespace versa::taskbench;

TaskBenchParams params_for(GraphFamily family, std::uint32_t width,
                           std::uint32_t steps) {
  TaskBenchParams params;
  params.family = family;
  params.width = width;
  params.steps = steps;
  params.payload_bytes = 1024;
  return params;
}

/// Deterministic edge-list generation, the pure-CPU part of the pipeline.
void BM_TaskbenchGenerate(benchmark::State& state) {
  const auto family = static_cast<GraphFamily>(state.range(0));
  const TaskBenchParams params = params_for(family, 64, 32);
  std::size_t edges = 0;
  for (auto _ : state) {
    GraphSpec spec = generate_graph(params);
    edges = spec.edges.size();
    benchmark::DoNotOptimize(spec);
  }
  state.counters["edges"] = static_cast<double>(edges);
}

/// Ancestor-bitset transitive closure (the property test's oracle side).
void BM_TaskbenchClosure(benchmark::State& state) {
  const GraphSpec spec =
      generate_graph(params_for(GraphFamily::kStencil1D, 64, 32));
  for (auto _ : state) {
    auto closure = dependence_closure(spec);
    benchmark::DoNotOptimize(closure);
  }
}

/// Whole-pipeline per-task overhead on the sim backend: submit a generated
/// graph through the ordinary Runtime API and run it to completion in
/// virtual time. tasks/s counts real scheduling work, not compute.
void BM_TaskbenchSimRun(benchmark::State& state) {
  const auto family = static_cast<GraphFamily>(state.range(0));
  const GraphSpec spec = generate_graph(params_for(family, 16, 8));
  const Machine machine = make_minotauro_node(4, 2);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.backend = Backend::kSim;
    Runtime rt(machine, config);
    SubmitGraphOptions options;
    options.task_cost = 1e-4;
    submit_graph(rt, spec, options);
    rt.taskwait();
    tasks += spec.node_count;
  }
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
}

/// Same pipeline on the thread backend with near-zero compute bodies:
/// pure runtime overhead under real threads (needs cores to be honest —
/// hardware_concurrency lands in the JSON context block).
void BM_TaskbenchThreadRun(benchmark::State& state) {
  versa::bench::report_hardware_concurrency();
  const auto family = static_cast<GraphFamily>(state.range(0));
  const GraphSpec spec = generate_graph(params_for(family, 16, 8));
  const Machine machine = make_smp_machine(2);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.backend = Backend::kThreads;
    Runtime rt(machine, config);
    SubmitGraphOptions options;
    options.task_cost = 1e-6;
    options.spin_bodies = true;
    submit_graph(rt, spec, options);
    rt.taskwait();
    tasks += spec.node_count;
  }
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
}

void family_args(benchmark::internal::Benchmark* bench) {
  for (const GraphFamily family : all_families()) {
    bench->Arg(static_cast<int>(family));
  }
}

BENCHMARK(BM_TaskbenchGenerate)->Apply(family_args);
BENCHMARK(BM_TaskbenchClosure);
BENCHMARK(BM_TaskbenchSimRun)->Apply(family_args);
BENCHMARK(BM_TaskbenchThreadRun)
    ->Arg(static_cast<int>(GraphFamily::kStencil1D))
    ->Arg(static_cast<int>(GraphFamily::kTrivial))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
