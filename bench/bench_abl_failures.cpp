// Ablation — transient device failures. Self-adaptive scheduling is about
// reacting to the machine as it is, not as specified; this harness injects
// per-attempt failure probabilities and reports how gracefully each
// scheduler's makespan degrades (retries re-enter the scheduler, so the
// versioning policy re-decides with fresh busy estimates each time).
#include <cstdio>

#include "apps/matmul.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct Outcome {
  double gflops;
  std::uint64_t failed;
};

Outcome run(const std::string& scheduler, double failure_rate) {
  const Machine machine = make_minotauro_node(8, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.failure_rate = failure_rate;
  Runtime rt(machine, config);
  apps::MatmulParams params;
  params.n = 8192;  // quarter-size run keeps the sweep quick
  params.hybrid = scheduler.rfind("versioning", 0) == 0;
  apps::MatmulApp app(rt, params);
  app.run();
  return {gflops(app.total_flops(), rt.elapsed()), rt.failed_attempts()};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: transient failure injection (matmul 8192^2, 8 SMP + 2 "
      "GPU)\nfailed attempts burn partial task time, then reschedule\n\n");

  TablePrinter table({"failure rate", "mm-gpu-dep", "mm-hyb-ver",
                      "hyb failed attempts"});
  for (const double rate : {0.0, 0.05, 0.15, 0.30}) {
    const Outcome dep = run("dep-aware", rate);
    const Outcome ver = run("versioning", rate);
    table.add_row({format_double(rate, 2),
                   format_double(dep.gflops, 1) + " GF/s",
                   format_double(ver.gflops, 1) + " GF/s",
                   std::to_string(ver.failed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
