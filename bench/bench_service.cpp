// Service-mode throughput: graphs/sec through VersaService as the client
// count grows.
//
// Each benchmark thread is one client with its own tenant: per iteration
// it submits a small chain graph (the task-bench-style
// small-graph-at-high-rate shape) and blocks in wait_graph until the graph
// retires. items_per_second therefore reads as end-to-end graphs/sec
// including admission, region registration, per-graph completion tracking
// and retirement — the full service round trip, contended by however many
// clients the ThreadRange sets. The shared runtime uses the thread backend
// with one worker per detected core (capped at 4 to keep the fleet stable
// on big hosts).
#include <benchmark/benchmark.h>

#include "bench_context.h"

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "machine/presets.h"
#include "runtime/config.h"
#include "service/versa_service.h"
#include "util/lock_order.h"

namespace versa {
namespace {

constexpr int kMaxClients = 8;
constexpr std::size_t kTasksPerGraph = 4;

struct Harness {
  Machine machine;
  service::VersaService service;
  service::GraphSpec spec;
  TaskTypeId type = kInvalidTaskType;
  std::atomic<std::uint64_t> executed{0};

  Harness()
      : machine(make_smp_machine(4)), service(machine, [] {
          service::VersaServiceConfig config;
          config.runtime.backend = Backend::kThreads;
          config.runtime.scheduler = "versioning";
          return config;
        }()) {
    type = service.runtime().declare_task("svc_chain");
    service.runtime().add_version(type, DeviceKind::kSmp, "smp",
                                  [this](TaskContext&) {
                                    executed.fetch_add(
                                        1, std::memory_order_relaxed);
                                  });
    // One region, every task inout on it: a pure dependence chain.
    spec.regions.push_back({"chain", 4096});
    for (std::size_t i = 0; i < kTasksPerGraph; ++i) {
      service::TaskSpec task;
      task.type = type;
      task.accesses.push_back({0, AccessMode::kInOut});
      spec.tasks.push_back(std::move(task));
    }
  }
};

void BM_ServiceGraphsPerSecond(benchmark::State& state) {
  // Function-local static: one shared service across every thread count,
  // like the other concurrency benches. Tenants for the maximum client
  // count are registered up front; benchmark thread i submits as tenant
  // session i.
  static Harness* harness = new Harness();
  static std::vector<service::Session>* sessions = [] {
    auto* s = new std::vector<service::Session>;
    for (int i = 0; i < kMaxClients; ++i) {
      service::TenantQuota quota;
      quota.weight = 1;
      s->push_back(harness->service.open_session(
          "client" + std::to_string(i), quota));
    }
    return s;
  }();
  service::Session& session = (*sessions)[state.thread_index()];
  for (auto _ : state) {
    const service::SubmitResult result = session.submit(harness->spec);
    if (result.admitted()) {
      session.wait(result.graph);
    } else {
      state.SkipWithError(("rejected: " + result.rejected.detail).c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceGraphsPerSecond)
    ->ThreadRange(1, kMaxClients)
    ->UseRealTime();

}  // namespace
}  // namespace versa

int main(int argc, char** argv) {
  // Measure the service, not the debug checker (parity with the other
  // concurrency benches; the stress test runs with the checker on).
  versa::lock_order::set_enforced(false);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  versa::bench::report_hardware_concurrency();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
