// Adaptive granularity (DESIGN.md §11) — auto split/fuse vs fixed tilings.
//
// On an asymmetric node (many slow SMP cores around one fast GPU) no
// single tile size wins: coarse tiles serialize the machine behind the
// GPU, fine tiles drown in per-launch overhead. The controller starts
// from the coarsest tiling, learns the per-group profile the versioning
// scheduler already maintains, and re-tiles submissions whose profiled
// mean dominates the busy spread. This harness measures a steady-state
// pass (second run, warm profile) of matmul for each fixed tiling with
// the controller off, then the coarsest tiling with --granularity=auto,
// and checks auto lands within a small margin of the best fixed choice.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/matmul.h"
#include "bench_util.h"
#include "common/check.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

constexpr std::size_t kEdge = 8192;
constexpr std::size_t kSmp = 12;
constexpr std::size_t kGpus = 1;
constexpr double kLaunchOverhead = 20e-6;

struct PassResult {
  double gflops = 0.0;
  std::uint64_t splits = 0;
  std::uint64_t fuses = 0;
  std::uint64_t reversals = 0;
};

// Run two passes of the same submission batch in one runtime; the first
// warms the profile (and, in auto mode, lets the controller observe the
// original granularity), the second is the steady state we report.
PassResult run(std::size_t tile, const std::string& granularity) {
  const Machine machine = make_minotauro_node(kSmp, kGpus);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  if (!granularity.empty()) {
    VERSA_CHECK(core::parse_granularity(granularity, config.granularity));
  }
  Runtime rt(machine, config);

  apps::MatmulParams params;
  params.n = kEdge;
  params.tile = tile;
  params.hybrid = true;
  params.launch_overhead = kLaunchOverhead;
  apps::MatmulApp app(rt, params);

  app.submit_all();
  rt.taskwait();
  const double warm = rt.elapsed();
  app.submit_all();
  rt.taskwait();

  PassResult result;
  result.gflops = gflops(app.total_flops(), rt.elapsed() - warm);
  if (const auto* controller = rt.granularity()) {
    result.splits = controller->stats().splits;
    result.fuses = controller->stats().fuses;
    result.reversals = controller->stats().reversals;
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Adaptive granularity: matmul %zu^2 on an asymmetric node "
      "(%zu SMP + %zu GPU, %.0f us launch overhead)\n\n",
      kEdge, kSmp, kGpus, kLaunchOverhead * 1e6);

  const std::vector<std::size_t> tilings = {512, 1024, 2048};
  TablePrinter table({"series", "tile", "steady pass", "splits", "fuses"});
  CsvWriter csv;
  csv.add_row({"series", "tile", "gflops"});

  double best_fixed = 0.0;
  for (const std::size_t tile : tilings) {
    const PassResult fixed = run(tile, "off");
    best_fixed = std::max(best_fixed, fixed.gflops);
    table.add_row({"fixed", std::to_string(tile),
                   format_double(fixed.gflops, 1) + " GFLOP/s", "-", "-"});
    csv.add_row({"fixed", std::to_string(tile),
                 format_double(fixed.gflops, 1)});
  }

  const std::size_t coarse = tilings.back();
  const PassResult adaptive = run(coarse, "auto");
  table.add_row({"auto", std::to_string(coarse),
                 format_double(adaptive.gflops, 1) + " GFLOP/s",
                 std::to_string(adaptive.splits),
                 std::to_string(adaptive.fuses)});
  csv.add_row({"auto", std::to_string(coarse),
               format_double(adaptive.gflops, 1)});

  std::printf("%s\n", table.to_string().c_str());
  versa::bench::maybe_write_csv("granularity", csv);

  // Soft tolerance: the controller starts from the worst fixed tiling and
  // must recover to (at least) the best one, minus a small margin for the
  // learning passes it cannot skip.
  const double floor = 0.95 * best_fixed;
  const bool pass = adaptive.gflops >= floor && adaptive.splits > 0;
  std::printf("auto vs best fixed: %.1f / %.1f GFLOP/s (floor %.1f) — %s\n",
              adaptive.gflops, best_fixed, floor, pass ? "OK" : "FAIL");
  return pass ? 0 : 1;
}
