// Shared context reporting for the concurrency micro-benchmarks
// (bench_thread_scale, bench_data_path, bench_service).
//
// These benches measure contention, so their numbers are meaningless on a
// starved host: a single-core CI runner flat-lines every scaling curve and
// the JSON output gives no hint why. Every concurrency bench therefore
// (1) records the detected hardware_concurrency in the benchmark context
// (it lands in the JSON "context" block next to num_cpus) and (2) prints a
// loud stderr warning when fewer than four cores are available.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>

namespace versa::bench {

/// Detected core count (0 when the implementation cannot tell).
///
/// Always emits the "hardware_concurrency" context field — including the
/// cores == 0 detection-failure case, so a JSON dump without the field
/// means the bench never called this, not that detection failed. Safe to
/// call more than once; the context entry is added exactly once.
inline unsigned report_hardware_concurrency() {
  const unsigned cores = std::thread::hardware_concurrency();
  static const bool emitted = [cores] {
    ::benchmark::AddCustomContext("hardware_concurrency",
                                  std::to_string(cores));
    return true;
  }();
  (void)emitted;
  if (cores < 4) {
    std::fprintf(
        stderr,
        "\n*** WARNING: only %u hardware thread%s detected ***\n"
        "*** concurrency benchmarks need >= 4 cores; scaling curves on\n"
        "*** this host will flat-line and should not be quoted.\n\n",
        cores, cores == 1 ? "" : "s");
  }
  return cores;
}

}  // namespace versa::bench
