// Micro-benchmarks (google-benchmark) for the runtime's hot paths: event
// queue churn, dependence analysis (serial and concurrent via the sharded
// analyzer), directory acquires, profile updates, versioning decisions,
// and end-to-end task throughput in simulation.
#include <benchmark/benchmark.h>

#include "bench_context.h"
#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/profile_table.h"
#include "sim/event_queue.h"
#include "task/dependency_analyzer.h"

namespace versa {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const std::size_t events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < events; ++i) {
      queue.schedule_at(static_cast<Time>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(queue.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(64)->Arg(512);

void BM_DependencyAnalysisChain(benchmark::State& state) {
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    DependencyAnalyzer analyzer;
    std::vector<TaskId> preds;
    for (TaskId t = 0; t < tasks; ++t) {
      preds.clear();
      analyzer.add_task(t, {Access{0, AccessMode::kInOut, 0, 4096}}, preds);
      benchmark::DoNotOptimize(preds.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_DependencyAnalysisChain)->Arg(1024);

void BM_DependencyAnalysisRandomRanges(benchmark::State& state) {
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    DependencyAnalyzer analyzer;
    Rng rng(1);
    std::vector<TaskId> preds;
    for (TaskId t = 0; t < tasks; ++t) {
      const std::uint64_t offset = rng.next_below(1 << 20);
      const std::uint64_t length = 1 + rng.next_below(1 << 16);
      const auto mode = static_cast<AccessMode>(rng.next_below(3));
      preds.clear();
      analyzer.add_task(t, {Access{0, mode, offset, length}}, preds);
      benchmark::DoNotOptimize(preds.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_DependencyAnalysisRandomRanges)->Arg(1024);

/// Concurrent registration throughput through the sharded analyzer: each
/// thread submits an inout chain over its own disjoint region set
/// (regions striped across analyzer shards), so producers contend only
/// on shard mutexes they actually share. Per-thread throughput should
/// hold roughly flat from 1 to 8 threads on a multicore host — the
/// pre-sharding analyzer serialized every add_task on one mutex.
void BM_RegistrationThroughputSharded(benchmark::State& state) {
  static DependencyAnalyzer analyzer;
  constexpr std::uint64_t kRegionsPerThread = 4;
  const RegionId base =
      static_cast<RegionId>(state.thread_index()) * kRegionsPerThread;
  TaskId id = static_cast<TaskId>(state.thread_index() + 1) * 1000000000ull;
  std::vector<TaskId> preds;
  for (auto _ : state) {
    ++id;
    // Inout chains keep the interval state bounded (each access replaces
    // the last writer instead of growing a reader list).
    const AccessList accesses = {
        Access{base + (id % kRegionsPerThread), AccessMode::kInOut, 0, 4096}};
    preds.clear();
    analyzer.add_task(id, accesses, preds);
    benchmark::DoNotOptimize(preds.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrationThroughputSharded)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_DirectoryAcquireMigrate(benchmark::State& state) {
  const Machine machine = make_minotauro_node(2, 2);
  DataDirectory directory(machine);
  const RegionId region = directory.register_region("r", 1 << 20);
  const SpaceId gpu0 = machine.worker(2).space;
  const SpaceId gpu1 = machine.worker(3).space;
  TransferList ops;
  for (auto _ : state) {
    ops.clear();
    directory.acquire({Access::inout_range(region, 0, 1 << 20)}, gpu0, ops);
    ops.clear();
    directory.acquire({Access::inout_range(region, 0, 1 << 20)}, gpu1, ops);
    benchmark::DoNotOptimize(ops.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DirectoryAcquireMigrate);

void BM_ProfileRecordAndQuery(benchmark::State& state) {
  VersionRegistry registry;
  const TaskTypeId type = registry.declare_task("t");
  const VersionId v0 =
      registry.add_version(type, DeviceKind::kCuda, "a", nullptr, nullptr);
  const VersionId v1 =
      registry.add_version(type, DeviceKind::kSmp, "b", nullptr, nullptr);
  ProfileTable table(registry, {});
  std::uint64_t size = 0;
  for (auto _ : state) {
    size = (size + 4096) % (1 << 22);
    table.record(type, v0, size, 1e-3);
    table.record(type, v1, size, 2e-3);
    benchmark::DoNotOptimize(table.fastest_version(type, size));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileRecordAndQuery);

void BM_EndToEndSimThroughput(benchmark::State& state) {
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Machine machine = make_minotauro_node(4, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.noise.kind = sim::NoiseKind::kNone;
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(4e-3));
    std::vector<RegionId> regions;
    for (int i = 0; i < 16; ++i) {
      regions.push_back(rt.register_data("r" + std::to_string(i), 1 << 16));
    }
    for (std::size_t i = 0; i < tasks; ++i) {
      rt.submit(t, {Access::inout(regions[i % regions.size()])});
    }
    rt.taskwait();
    benchmark::DoNotOptimize(rt.elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_EndToEndSimThroughput)->Arg(1000)->Arg(10000);

void BM_VersioningDecisionScaling(benchmark::State& state) {
  // Cost of the versioning scheduler's earliest-executor decision as the
  // machine grows: the decision scans (version, worker) pairs and sums
  // queue estimates, so this is the policy's hot path.
  const std::size_t smp = static_cast<std::size_t>(state.range(0));
  const Machine machine = make_minotauro_node(smp, 2);
  for (auto _ : state) {
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.noise.kind = sim::NoiseKind::kNone;
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr,
                   make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr,
                   make_constant_cost(4e-3));
    std::vector<RegionId> regions;
    for (int i = 0; i < 32; ++i) {
      regions.push_back(rt.register_data("r" + std::to_string(i), 1 << 12));
    }
    for (int i = 0; i < 2000; ++i) {
      rt.submit(t, {Access::inout(regions[i % regions.size()])});
    }
    rt.taskwait();
    benchmark::DoNotOptimize(rt.elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_VersioningDecisionScaling)->Arg(2)->Arg(8);

}  // namespace
}  // namespace versa

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  versa::bench::report_hardware_concurrency();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
