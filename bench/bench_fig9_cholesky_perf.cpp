// Figure 9 — Cholesky factorization performance (GFLOP/s).
//
// Series as in the paper: potrf-smp and potrf-gpu under the baseline
// schedulers (dependency-aware, affinity) and potrf-hyb under the
// versioning scheduler. Matrix: 32768 x 32768 floats (4 GB), blocks of
// 2048 x 2048 (16 MB); trsm/syrk/gemm are always GPU tasks.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf("Figure 9: Cholesky factorization performance (GFLOP/s)\n");
  std::printf("matrix 32768x32768 floats, block 2048 (16 MB)\n\n");

  TablePrinter table({"config", "potrf-smp-dep", "potrf-smp-aff",
                      "potrf-gpu-dep", "potrf-gpu-aff", "potrf-hyb-ver"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;

    options.scheduler = "dep-aware";
    const AppResult smp_dep = run_cholesky(options, apps::PotrfVariant::kSmp);
    const AppResult gpu_dep = run_cholesky(options, apps::PotrfVariant::kGpu);
    options.scheduler = "affinity";
    const AppResult smp_aff = run_cholesky(options, apps::PotrfVariant::kSmp);
    const AppResult gpu_aff = run_cholesky(options, apps::PotrfVariant::kGpu);
    options.scheduler = "versioning";
    const AppResult hyb =
        run_cholesky(options, apps::PotrfVariant::kHybrid);

    table.add_row({config_label(rc), format_double(smp_dep.gflops, 1),
                   format_double(smp_aff.gflops, 1),
                   format_double(gpu_dep.gflops, 1),
                   format_double(gpu_aff.gflops, 1),
                   format_double(hyb.gflops, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
