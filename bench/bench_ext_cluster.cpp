// Extension experiment — versioning scheduler on a GPU cluster.
//
// The paper's introduction positions OmpSs as the same programming model
// from one heterogeneous node up to "clusters of SMPs and/or GPUs". This
// harness scales the hybrid matrix multiplication from one MinoTauro node
// to a four-node cluster (network-staged transfers included) and reports
// scaling efficiency per scheduler.
#include <cstdio>

#include "apps/matmul.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct Outcome {
  double gflops;
  TransferStats tx;
};

Outcome run(std::size_t nodes, const std::string& scheduler, bool hybrid) {
  const Machine machine = make_gpu_cluster(nodes, 8, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  Runtime rt(machine, config);
  apps::MatmulParams params;  // paper scale: 16384^2 doubles, 1024^2 tiles
  params.hybrid = hybrid;
  apps::MatmulApp app(rt, params);
  app.run();
  return {gflops(app.total_flops(), rt.elapsed()), rt.transfer_stats()};
}

}  // namespace

int main() {
  std::printf(
      "Extension: hybrid matmul on a GPU cluster (8 SMP + 2 GPU per node)\n"
      "16384x16384 doubles; network 3.2 GB/s between node memories\n\n");

  TablePrinter table({"nodes", "mm-gpu-dep", "mm-hyb-ver", "hyb total tx",
                      "scaling (hyb)"});
  double base = 0.0;
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    const Outcome gpu = run(nodes, "dep-aware", false);
    const Outcome hyb = run(nodes, "versioning", true);
    if (nodes == 1) base = hyb.gflops;
    table.add_row(
        {std::to_string(nodes), format_double(gpu.gflops, 1) + " GF/s",
         format_double(hyb.gflops, 1) + " GF/s",
         format_bytes(static_cast<double>(hyb.tx.total_bytes())),
         format_double(hyb.gflops / base / static_cast<double>(nodes) * 100.0,
                       1) +
             " %"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "scaling efficiency dips as the network serializes tile movement —\n"
      "the locality weakness the paper's §VII roadmap targets.\n");
  return 0;
}
