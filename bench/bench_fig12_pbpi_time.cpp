// Figure 12 — PBPI execution time (lower is better; PBPI has no
// floating-point-rate metric, §V-B3).
//
// Series: pbpi-smp and pbpi-gpu under the baseline schedulers, pbpi-hyb
// under the versioning scheduler. Dataset: 500 MB / 50000 elements;
// generation count scaled down (constant per-generation structure), which
// rescales every series identically.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf("Figure 12: PBPI execution time (seconds, lower is better)\n");
  std::printf("dataset 500 MB, 50 generations (scaled run)\n\n");

  TablePrinter table({"config", "pbpi-smp-dep", "pbpi-gpu-dep",
                      "pbpi-gpu-aff", "pbpi-hyb-ver"});
  CsvWriter csv;
  csv.add_row({"smp", "gpus", "pbpi_smp", "pbpi_gpu_dep", "pbpi_gpu_aff",
               "pbpi_hyb_ver"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;

    options.scheduler = "dep-aware";
    const AppResult smp = run_pbpi(options, apps::PbpiVariant::kSmp);
    const AppResult gpu_dep = run_pbpi(options, apps::PbpiVariant::kGpu);
    options.scheduler = "affinity";
    const AppResult gpu_aff = run_pbpi(options, apps::PbpiVariant::kGpu);
    options.scheduler = "versioning";
    const AppResult hyb = run_pbpi(options, apps::PbpiVariant::kHybrid);

    table.add_row({config_label(rc),
                   format_double(smp.elapsed_seconds, 2),
                   format_double(gpu_dep.elapsed_seconds, 2),
                   format_double(gpu_aff.elapsed_seconds, 2),
                   format_double(hyb.elapsed_seconds, 2)});
    csv.add_row({std::to_string(rc.smp), std::to_string(rc.gpus),
                 format_double(smp.elapsed_seconds, 4),
                 format_double(gpu_dep.elapsed_seconds, 4),
                 format_double(gpu_aff.elapsed_seconds, 4),
                 format_double(hyb.elapsed_seconds, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv("fig12_pbpi_time", csv);
  return 0;
}
