// Ablation — exact vs. range-based data-set-size grouping (§VII future
// work #2: "if the data needed by two calls to the same task varies from
// only 1 byte, the scheduler will consider that these calls belong to
// different groups ... it would be better to define the data sizes of each
// group in a reasonable range").
//
// Workload: one task type (fast GPU + slow SMP version) invoked with data
// sizes jittered by a few percent, so exact grouping sees a fresh group
// (and pays a fresh learning phase) for almost every task.
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"
#include "sched/versioning_scheduler.h"

using namespace versa;

namespace {

struct Outcome {
  double elapsed_ms;
  std::uint64_t slow_runs;
  std::size_t groups;
};

Outcome run(SizeGrouping grouping) {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.grouping = grouping;
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  const TaskTypeId t = rt.declare_task("kernel");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_linear_cost(1e-3, 1e-12));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_linear_cost(20e-3, 2e-11));

  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    // ~1 MB with up to 4 % jitter: a new exact group almost every time.
    const std::uint64_t size =
        1'000'000 + rng.next_below(40'000);
    const RegionId r =
        rt.register_data("d" + std::to_string(i), size);
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait();

  const auto& versioning = dynamic_cast<VersioningScheduler&>(rt.scheduler());
  return {rt.elapsed() * 1e3, rt.run_stats().count(smp),
          versioning.profile().group_count()};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: data-set-size grouping (300 tasks, sizes ~1 MB +-4%%,\n"
      "gpu version 1 ms vs smp version 20 ms, lambda=2)\n\n");

  TablePrinter table({"grouping", "groups", "slow (smp) runs", "elapsed"});
  const Outcome exact = run(SizeGrouping::kExact);
  const Outcome range = run(SizeGrouping::kRange);
  table.add_row({"exact (paper)", std::to_string(exact.groups),
                 std::to_string(exact.slow_runs),
                 format_double(exact.elapsed_ms, 2) + " ms"});
  table.add_row({"range (future work)", std::to_string(range.groups),
                 std::to_string(range.slow_runs),
                 format_double(range.elapsed_ms, 2) + " ms"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "exact grouping opens a fresh group for nearly every task, so no\n"
      "group ever accumulates lambda runs: the scheduler stays in the\n"
      "learning phase for the whole run and never makes informed\n"
      "earliest-executor decisions. Range grouping converges after one\n"
      "learning phase and then exploits both devices deliberately —\n"
      "\"better decisions would be taken earlier\" (§VII).\n");
  return 0;
}
