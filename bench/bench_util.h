// Shared machinery for the paper-figure harnesses: the resource
// configurations of §V (1-8 SMP worker threads x 1-2 GPUs), and one runner
// per evaluation application that builds a MinoTauro-node runtime, executes
// the workload in virtual time, and returns the numbers each figure plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/cholesky.h"
#include "apps/matmul.h"
#include "apps/pbpi.h"
#include "data/transfer_stats.h"
#include "perf/report.h"
#include "runtime/config.h"

namespace versa::bench {

struct ResourceConfig {
  std::size_t smp;
  std::size_t gpus;
};

/// The configurations reported in Figures 6-15.
const std::vector<ResourceConfig>& paper_configs();

/// "4 SMP + 2 GPU" style label.
std::string config_label(const ResourceConfig& config);

/// Common knobs for a single experiment run.
struct RunOptions {
  std::string scheduler = "versioning";
  std::size_t smp = 8;
  std::size_t gpus = 2;
  std::uint64_t seed = 42;
  bool prefetch = true;
  ProfileConfig profile;
  double noise_magnitude = 0.03;
};

RuntimeConfig make_runtime_config(const RunOptions& options);

struct VersionShare {
  std::string name;
  std::uint64_t count = 0;
  double percent = 0.0;
};

struct AppResult {
  double elapsed_seconds = 0.0;
  double gflops = 0.0;  ///< 0 for PBPI (no FLOP metric, §V-B3)
  TransferStats transfers;
  std::vector<VersionShare> shares;  ///< per tracked task type, in order
  std::uint64_t tasks = 0;
};

/// Matrix multiplication (§V-B1). hybrid=false -> mm-gpu, true -> mm-hyb.
AppResult run_matmul(const RunOptions& options, bool hybrid,
                     std::size_t n = 16384, std::size_t tile = 1024);

/// Cholesky factorization (§V-B2).
AppResult run_cholesky(const RunOptions& options, apps::PotrfVariant variant,
                       std::size_t n = 32768, std::size_t block = 2048);

/// PBPI (§V-B3). `loop_of_interest` selects whose version shares are
/// reported (1 or 2, for Figures 14/15).
AppResult run_pbpi(const RunOptions& options, apps::PbpiVariant variant,
                   int loop_of_interest = 1,
                   std::size_t generations = 50);

/// Machine-readable output: if $VERSA_CSV_DIR is set, write `csv` to
/// $VERSA_CSV_DIR/<name>.csv (for plotting the figures). Returns whether
/// a file was written.
bool maybe_write_csv(const std::string& name, const CsvWriter& csv);

}  // namespace versa::bench
