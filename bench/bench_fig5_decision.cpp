// Figure 5 — Scheduling decisions: earliest executor vs. fastest executor.
//
// Sets up the paper's scenario: one GPU worker (the *fastest* executor of
// the task) plus idle SMP workers, then releases a burst of ready tasks.
// The versioning scheduler keeps the GPU queue saturated but, once the
// GPU's estimated busy time exceeds the SMP version's mean, it assigns
// tasks to the idle SMP workers — they are the *earliest* executors even
// though their version is slower. The timeline below makes the decision
// visible per task.
#include <cstdio>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"

using namespace versa;

int main() {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 1;
  config.noise.kind = sim::NoiseKind::kNone;

  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("work");
  rt.add_version(t, DeviceKind::kCuda, "gpu-fast", nullptr,
                 make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "smp-slow", nullptr,
                 make_constant_cost(3e-3));

  // Learning warm-up: one run of each version.
  const RegionId r = rt.register_data("r", 1 << 20);
  rt.submit(t, {Access::in(r)});
  rt.submit(t, {Access::in(r)});
  rt.taskwait();

  // Burst of 12 independent ready tasks: watch the decisions.
  for (int i = 0; i < 12; ++i) {
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait();

  std::printf(
      "Figure 5: scheduling decisions (gpu mean 1 ms, smp mean 3 ms)\n"
      "The GPU is the fastest executor; overflow tasks go to idle SMP\n"
      "workers when those would finish earlier.\n\n");
  TablePrinter table({"task", "version", "worker", "start (ms)", "finish (ms)"});
  for (const Task& task : rt.task_graph().tasks()) {
    if (task.id < 2) continue;  // skip the warm-up tasks
    const auto& version = rt.version_registry().version(task.chosen_version);
    table.add_row({std::to_string(task.id), version.name,
                   machine.worker(task.assigned_worker).name,
                   format_double(task.start_time * 1e3, 3),
                   format_double(task.finish_time * 1e3, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::uint64_t gpu_count = 0, smp_count = 0;
  for (const Task& task : rt.task_graph().tasks()) {
    if (task.id < 2) continue;
    if (rt.version_registry().version(task.chosen_version).device ==
        DeviceKind::kCuda) {
      ++gpu_count;
    } else {
      ++smp_count;
    }
  }
  std::printf("decision split: %llu tasks to the fastest executor (GPU), "
              "%llu to earlier SMP workers\n",
              static_cast<unsigned long long>(gpu_count),
              static_cast<unsigned long long>(smp_count));
  return 0;
}
