// Figure 13 — Data transferred for PBPI. pbpi-smp moves nothing (all data
// stays in host memory); pbpi-gpu pays the per-generation chunk round
// trips; pbpi-hyb transfers the most in absolute bytes but overlaps them
// (§V-B3).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

namespace {

std::string cell(std::uint64_t bytes) {
  return format_bytes(static_cast<double>(bytes));
}

}  // namespace

int main() {
  std::printf("Figure 13: data transferred for PBPI\n\n");

  TablePrinter table({"config", "series", "Input Tx", "Output Tx",
                      "Device Tx", "total"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;

    options.scheduler = "dep-aware";
    const AppResult smp = run_pbpi(options, apps::PbpiVariant::kSmp);
    const AppResult gpu = run_pbpi(options, apps::PbpiVariant::kGpu);
    options.scheduler = "versioning";
    const AppResult hyb = run_pbpi(options, apps::PbpiVariant::kHybrid);

    const struct {
      const char* name;
      const TransferStats* tx;
    } rows[] = {{"SMP", &smp.transfers}, {"GPU", &gpu.transfers},
                {"HYB", &hyb.transfers}};
    for (const auto& row : rows) {
      table.add_row({config_label(rc), row.name, cell(row.tx->input_bytes),
                     cell(row.tx->output_bytes), cell(row.tx->device_bytes),
                     cell(row.tx->total_bytes())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
