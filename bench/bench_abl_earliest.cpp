// Ablation — earliest executor vs. fastest executor (the core of §IV-B and
// Figure 5).
//
// "versioning-fastest" is the strawman policy that always sends a task to
// the fastest version's device regardless of how busy it is. The paper's
// earliest-executor rule instead hands overflow work to idle slower
// workers. The gap between the two policies is exactly the cooperative
// speedup the paper's evaluation attributes to the versioning scheduler.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf(
      "Ablation: earliest executor (paper) vs fastest executor (strawman)\n\n");

  TablePrinter table({"workload", "config", "earliest (paper)",
                      "fastest-only", "gain"});
  for (const ResourceConfig& rc :
       {ResourceConfig{4, 1}, ResourceConfig{8, 1}, ResourceConfig{8, 2}}) {
    RunOptions earliest;
    earliest.smp = rc.smp;
    earliest.gpus = rc.gpus;
    earliest.scheduler = "versioning";
    RunOptions fastest = earliest;
    fastest.scheduler = "versioning-fastest";

    const AppResult mm_e = run_matmul(earliest, true);
    const AppResult mm_f = run_matmul(fastest, true);
    table.add_row({"mm-hyb", config_label(rc),
                   format_double(mm_e.gflops, 1) + " GFLOP/s",
                   format_double(mm_f.gflops, 1) + " GFLOP/s",
                   format_double(mm_e.gflops / mm_f.gflops, 3) + "x"});

    const AppResult pb_e = run_pbpi(earliest, apps::PbpiVariant::kHybrid, 1, 20);
    const AppResult pb_f = run_pbpi(fastest, apps::PbpiVariant::kHybrid, 1, 20);
    table.add_row({"pbpi-hyb", config_label(rc),
                   format_double(pb_e.elapsed_seconds, 2) + " s",
                   format_double(pb_f.elapsed_seconds, 2) + " s",
                   format_double(pb_f.elapsed_seconds / pb_e.elapsed_seconds,
                                 3) +
                       "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
