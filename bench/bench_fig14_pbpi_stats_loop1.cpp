// Figure 14 — PBPI task statistics (first computational loop) for the
// versioning scheduler: share of loop-1 tasks executed by the GPU and SMP
// versions of pbpi-hyb. The paper observes loop 1 goes to the GPU most of
// the time.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf(
      "Figure 14: PBPI loop-1 task statistics for the versioning "
      "scheduler\n(percentage of loop-1 tasks per implementation)\n\n");

  TablePrinter table({"config", "GPU %", "SMP %", "loop-1 tasks"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;
    options.scheduler = "versioning";
    const AppResult result =
        run_pbpi(options, apps::PbpiVariant::kHybrid, /*loop_of_interest=*/1);
    table.add_row({config_label(rc),
                   format_double(result.shares[0].percent, 1),
                   format_double(result.shares[1].percent, 1),
                   std::to_string(result.shares[0].count +
                                  result.shares[1].count)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
