// Ablation — the OmpSs `priority` clause on Cholesky's potrf (§V-B2).
//
// The paper singles potrf out: "it acts like a bottleneck and if it is not
// run as soon as its data dependencies are satisfied, there is less
// parallelism to exploit". Prioritized potrf tasks overtake queued
// trailing updates inside worker queues, releasing the next panel sooner.
#include <cstdio>

#include "apps/cholesky.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

double run(const std::string& scheduler, apps::PotrfVariant variant,
           int priority) {
  const Machine machine = make_minotauro_node(8, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  Runtime rt(machine, config);
  apps::CholeskyParams params;
  params.potrf = variant;
  params.potrf_priority = priority;
  apps::CholeskyApp app(rt, params);
  app.run();
  return gflops(app.total_flops(), rt.elapsed());
}

}  // namespace

int main() {
  std::printf(
      "Ablation: priority clause on potrf (Cholesky 32768^2, 8 SMP + 2 "
      "GPU)\n\n");
  TablePrinter table({"series", "priority 0", "priority 10", "speedup"});
  const struct {
    const char* name;
    const char* scheduler;
    apps::PotrfVariant variant;
  } rows[] = {
      {"potrf-gpu-dep", "dep-aware", apps::PotrfVariant::kGpu},
      {"potrf-gpu-aff", "affinity", apps::PotrfVariant::kGpu},
      {"potrf-hyb-ver", "versioning", apps::PotrfVariant::kHybrid},
  };
  for (const auto& row : rows) {
    const double base = run(row.scheduler, row.variant, 0);
    const double prio = run(row.scheduler, row.variant, 10);
    table.add_row({row.name, format_double(base, 1) + " GFLOP/s",
                   format_double(prio, 1) + " GFLOP/s",
                   format_double(prio / base, 3) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
