// Extension experiment — SparseLU across schedulers.
//
// The classic StarSs/OmpSs benchmark: irregular sparsity, dynamic fill-in,
// four task types with very different costs. Irregularity is where the
// versioning scheduler's profiling shines over static placement: the
// per-type GPU/SMP speed ratios differ (lu0 barely benefits from the GPU,
// bmod hugely does), so a good hybrid split is type-dependent.
#include <cstdio>

#include "apps/sparselu.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

using namespace versa;

int main() {
  std::printf(
      "Extension: SparseLU (24x24 blocks of 256^2 floats, density 0.4)\n"
      "8 SMP + 2 GPU; hybrid versions where supported\n\n");

  TablePrinter table({"scheduler", "elapsed (ms)", "tasks", "fill-in",
                      "lu0 gpu/smp", "bmod gpu/smp"});
  for (const std::string& scheduler : scheduler_names()) {
    const Machine machine = make_minotauro_node(8, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = scheduler;
    config.profile.lambda = 2;
    Runtime rt(machine, config);

    apps::SparseLuParams params;
    params.blocks = 24;
    params.block_size = 256;
    params.density = 0.4;
    params.hybrid = true;
    apps::SparseLuApp app(rt, params);
    app.run();

    auto split = [&](TaskTypeId type) {
      std::uint64_t gpu = 0, smp = 0;
      for (const VersionId v : rt.version_registry().versions(type)) {
        const auto& version = rt.version_registry().version(v);
        (version.device == DeviceKind::kCuda ? gpu : smp) +=
            rt.run_stats().count(v);
      }
      return std::to_string(gpu) + "/" + std::to_string(smp);
    };
    table.add_row({scheduler, format_double(rt.elapsed() * 1e3, 2),
                   std::to_string(app.task_count()),
                   std::to_string(app.fill_in_count()),
                   split(app.lu0_type()), split(app.bmod_type())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "lu0 gains little from the GPU (latency-bound), bmod gains ~70x;\n"
      "only the versioning schedulers discover the per-type split.\n");
  return 0;
}
