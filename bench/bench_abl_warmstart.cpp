// Ablation — persistent profile store: cold start vs. warm start vs.
// warm start under injected drift.
//
// A first run learns its TaskVersionSet tables and persists them through
// the ProfileStore; a second run warm-starts from the store and performs
// zero learning-phase executions. The third run also warm-starts, but the
// GPU version is slowed 2x mid-run: the stored mean is now a lie, the
// CUSUM drift detector alarms, the affected size group re-enters the
// learning phase, and the assignment shares converge to the post-drift
// optimum — the paper's "self-adaptive" claim under behaviour drift.
#include <cstdio>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/profile_report.h"
#include "perf/report.h"
#include "runtime/runtime.h"
#include "sched/versioning_scheduler.h"

using namespace versa;

namespace {

constexpr double kGpuMs = 8e-3;
constexpr double kSmpMs = 12e-3;
constexpr std::size_t kWaves = 40;
constexpr std::size_t kTasksPerWave = 10;

struct Outcome {
  double elapsed_ms = 0.0;
  std::uint64_t learning = 0;
  std::size_t drift_events = 0;
  std::uint64_t gpu_runs = 0;
  std::uint64_t smp_runs = 0;
  double gpu_pct = 0.0;
  double smp_pct = 0.0;
  std::string load_summary;
};

/// One run. `drift_at_wave` < kWaves doubles the GPU cost from that wave
/// on (the cost model reads `gpu_scale` through a callable, so the change
/// is invisible to the scheduler except through measured durations).
Outcome run(const std::string& load, const std::string& save,
            bool drift_detection, std::size_t drift_at_wave) {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 3;
  config.profile.drift.enabled = drift_detection;
  config.profile_load_path = load;
  config.profile_save_path = save;

  double gpu_scale = 1.0;
  Outcome outcome;
  {
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("kernel");
    const VersionId gpu = rt.add_version(
        t, DeviceKind::kCuda, "gpu", nullptr,
        make_callable_cost([&gpu_scale](std::uint64_t) {
          return kGpuMs * gpu_scale;
        }));
    const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                         make_constant_cost(kSmpMs));
    const RegionId r = rt.register_data("data", 4 << 20);
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      if (wave == drift_at_wave) gpu_scale = 2.0;
      for (std::size_t i = 0; i < kTasksPerWave; ++i) {
        rt.submit(t, {Access::in(r)});
      }
      rt.taskwait();
    }
    const auto& versioning =
        dynamic_cast<const VersioningScheduler&>(rt.scheduler());
    outcome.elapsed_ms = rt.elapsed() * 1e3;
    outcome.learning = versioning.learning_executions();
    outcome.drift_events = versioning.profile().drift_events().size();
    outcome.gpu_runs = rt.run_stats().count(gpu);
    outcome.smp_runs = rt.run_stats().count(smp);
    outcome.gpu_pct = rt.run_stats().percent(t, gpu);
    outcome.smp_pct = rt.run_stats().percent(t, smp);
    outcome.load_summary = profile_load_summary(rt.profile_load_result());
  }
  return outcome;
}

std::string share(const char* name, std::uint64_t runs, double pct) {
  return std::string(name) + " " + std::to_string(runs) + " (" +
         format_double(pct, 1) + " %)";
}

}  // namespace

int main() {
  std::printf(
      "Ablation: persistent profile store (gpu %.0f ms vs smp %.0f ms, "
      "lambda=3, %zu waves x %zu tasks)\n"
      "drift run: gpu cost doubled from wave %zu on.\n\n",
      kGpuMs * 1e3, kSmpMs * 1e3, kWaves, kTasksPerWave, kWaves / 4);

  const std::string store = "/tmp/versa_abl_warmstart.store";
  std::remove(store.c_str());

  const Outcome cold = run("", store, false, kWaves);
  const Outcome warm = run(store, "", false, kWaves);
  const Outcome drift = run(store, "", true, kWaves / 4);
  const Outcome stale = run(store, "", false, kWaves / 4);

  std::printf("warm-start %s\n\n", warm.load_summary.c_str());

  TablePrinter table({"mode", "elapsed", "learning execs", "drift alarms",
                      "version counts"});
  auto row = [&table](const char* mode, const Outcome& o) {
    table.add_row({mode, format_double(o.elapsed_ms, 2) + " ms",
                   std::to_string(o.learning), std::to_string(o.drift_events),
                   share("gpu", o.gpu_runs, o.gpu_pct) + ", " +
                       share("smp", o.smp_runs, o.smp_pct)});
  };
  row("cold", cold);
  row("warm", warm);
  row("warm+drift+detector", drift);
  row("warm+drift, no detector", stale);
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "The detector row re-enters learning after the injected slowdown and\n"
      "shifts work to the SMP version; the no-detector row keeps trusting\n"
      "the stale GPU mean and only drifts back through slow mean decay.\n");
  return 0;
}
