// Ablation — arithmetic mean vs. exponential moving average (§IV-B
// footnote 3: "optionally, we could try computing a weighted mean to give
// more weight to recent execution information").
//
// Workload with behaviour drift: the GPU version is fast for the first
// half of the run and then degrades 8x (thermal throttling / clock drop).
// The arithmetic mean dilutes the new evidence across the whole history;
// the EMA tracks it and shifts work to the SMP version sooner.
#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct DriftState {
  bool degraded = false;
};

struct Outcome {
  double elapsed_ms;
  std::uint64_t smp_runs;
};

Outcome run(MeanKind kind) {
  const Machine machine = make_minotauro_node(4, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.mean_kind = kind;
  config.profile.ema_alpha = 0.3;
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  auto drift = std::make_shared<DriftState>();
  const TaskTypeId t = rt.declare_task("kernel");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_callable_cost([drift](std::uint64_t) {
                   return drift->degraded ? 16e-3 : 2e-3;
                 }));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_constant_cost(8e-3));

  // Two phases of 300 tasks each, separated by a taskwait at which the
  // GPU "throttles". Eight independent streams keep all workers fed.
  std::vector<RegionId> streams;
  for (int s = 0; s < 8; ++s) {
    streams.push_back(rt.register_data("s" + std::to_string(s), 1 << 20));
  }
  for (int i = 0; i < 300; ++i) {
    rt.submit(t, {Access::inout(streams[i % streams.size()])});
  }
  rt.taskwait();
  drift->degraded = true;
  for (int i = 0; i < 300; ++i) {
    rt.submit(t, {Access::inout(streams[i % streams.size()])});
  }
  rt.taskwait();

  return {rt.elapsed() * 1e3, rt.run_stats().count(smp)};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: profile averaging under behaviour drift\n"
      "(gpu 2 ms -> 16 ms at half-run; smp constant 8 ms)\n\n");

  TablePrinter table({"averaging", "smp runs", "elapsed"});
  const Outcome arith = run(MeanKind::kArithmetic);
  const Outcome ema = run(MeanKind::kExponential);
  table.add_row({"arithmetic (paper)", std::to_string(arith.smp_runs),
                 format_double(arith.elapsed_ms, 1) + " ms"});
  table.add_row({"EMA alpha=0.3 (footnote 3)", std::to_string(ema.smp_runs),
                 format_double(ema.elapsed_ms, 1) + " ms"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the EMA notices the degradation sooner, moves more work to\n"
              "the SMP version and finishes earlier.\n");
  return 0;
}
