// Figure 11 — Cholesky task statistics for the versioning scheduler: the
// share of potrf tasks run by the GPU (MAGMA) and SMP (CBLAS) versions in
// the potrf-hyb application. The paper observes that Cholesky's dependency
// graph leaves too little look-ahead to feed the slow SMP version, so the
// GPUs take (almost) all potrf executions.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf(
      "Figure 11: Cholesky potrf task statistics for the versioning "
      "scheduler\n(percentage of potrf tasks per implementation)\n\n");

  TablePrinter table({"config", "GPU(MAGMA) %", "SMP(CBLAS) %", "potrf tasks"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;
    options.scheduler = "versioning";
    const AppResult result =
        run_cholesky(options, apps::PotrfVariant::kHybrid);
    const std::uint64_t potrf_tasks =
        result.shares[0].count + result.shares[1].count;
    table.add_row({config_label(rc),
                   format_double(result.shares[0].percent, 1),
                   format_double(result.shares[1].percent, 1),
                   std::to_string(potrf_tasks)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
