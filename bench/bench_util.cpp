#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "machine/presets.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"

namespace versa::bench {

const std::vector<ResourceConfig>& paper_configs() {
  static const std::vector<ResourceConfig> configs = {
      {1, 1}, {2, 1}, {4, 1}, {8, 1}, {1, 2}, {2, 2}, {4, 2}, {8, 2},
  };
  return configs;
}

std::string config_label(const ResourceConfig& config) {
  return std::to_string(config.smp) + " SMP + " + std::to_string(config.gpus) +
         " GPU";
}

RuntimeConfig make_runtime_config(const RunOptions& options) {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = options.scheduler;
  config.seed = options.seed;
  config.prefetch = options.prefetch;
  config.profile = options.profile;
  config.noise.kind = options.noise_magnitude > 0.0
                          ? sim::NoiseKind::kLognormal
                          : sim::NoiseKind::kNone;
  config.noise.magnitude = options.noise_magnitude;
  return config;
}

namespace {

VersionShare share_of(const Runtime& rt, TaskTypeId type, VersionId version) {
  VersionShare share;
  if (version == kInvalidVersion) return share;
  share.name = rt.version_registry().version(version).name;
  share.count = rt.run_stats().count(version);
  share.percent = rt.run_stats().percent(type, version);
  return share;
}

}  // namespace

AppResult run_matmul(const RunOptions& options, bool hybrid, std::size_t n,
                     std::size_t tile) {
  const Machine machine = make_minotauro_node(options.smp, options.gpus);
  Runtime rt(machine, make_runtime_config(options));
  apps::MatmulParams params;
  params.n = n;
  params.tile = tile;
  params.hybrid = hybrid;
  apps::MatmulApp app(rt, params);
  app.run();

  AppResult result;
  result.elapsed_seconds = rt.elapsed();
  result.gflops = gflops(app.total_flops(), rt.elapsed());
  result.transfers = rt.transfer_stats();
  result.tasks = rt.run_stats().total_tasks();
  result.shares = {
      share_of(rt, app.task_type(), app.cublas_version()),
      share_of(rt, app.task_type(), app.cuda_version()),
      share_of(rt, app.task_type(), app.cblas_version()),
  };
  return result;
}

AppResult run_cholesky(const RunOptions& options, apps::PotrfVariant variant,
                       std::size_t n, std::size_t block) {
  const Machine machine = make_minotauro_node(options.smp, options.gpus);
  Runtime rt(machine, make_runtime_config(options));
  apps::CholeskyParams params;
  params.n = n;
  params.block = block;
  params.potrf = variant;
  apps::CholeskyApp app(rt, params);
  app.run();

  AppResult result;
  result.elapsed_seconds = rt.elapsed();
  result.gflops = gflops(app.total_flops(), rt.elapsed());
  result.transfers = rt.transfer_stats();
  result.tasks = rt.run_stats().total_tasks();
  result.shares = {
      share_of(rt, app.potrf_type(), app.potrf_gpu_version()),
      share_of(rt, app.potrf_type(), app.potrf_smp_version()),
  };
  return result;
}

AppResult run_pbpi(const RunOptions& options, apps::PbpiVariant variant,
                   int loop_of_interest, std::size_t generations) {
  const Machine machine = make_minotauro_node(options.smp, options.gpus);
  Runtime rt(machine, make_runtime_config(options));
  apps::PbpiParams params;
  params.variant = variant;
  params.generations = generations;
  apps::PbpiApp app(rt, params);
  app.run();

  AppResult result;
  result.elapsed_seconds = rt.elapsed();
  result.transfers = rt.transfer_stats();
  result.tasks = rt.run_stats().total_tasks();
  if (loop_of_interest == 1) {
    result.shares = {share_of(rt, app.loop1_type(), app.loop1_gpu()),
                     share_of(rt, app.loop1_type(), app.loop1_smp())};
  } else {
    result.shares = {share_of(rt, app.loop2_type(), app.loop2_gpu()),
                     share_of(rt, app.loop2_type(), app.loop2_smp())};
  }
  return result;
}

bool maybe_write_csv(const std::string& name, const CsvWriter& csv) {
  const char* dir = std::getenv("VERSA_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (!csv.write_file(path)) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return false;
  }
  std::printf("csv written to %s\n", path.c_str());
  return true;
}

}  // namespace versa::bench
