// Table I — The TaskVersionSet data structure.
//
// Recreates the paper's illustrative state: task1 with three versions
// called with two distinct data-set sizes (2 MB and 3 MB groups), task2
// with two versions and a single 5 MB group. After a run under the
// versioning scheduler, the profile table is dumped in the
// <VersionId, ExecTime, #Exec> layout of Table I.
#include <cstdio>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/versioning_scheduler.h"

using namespace versa;

int main() {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.noise.magnitude = 0.05;

  Runtime rt(machine, config);

  // task1: three versions with distinct speeds (as in Table I, where v2 is
  // the fastest for both size groups).
  const TaskTypeId task1 = rt.declare_task("task1");
  rt.add_version(task1, DeviceKind::kCuda, "task1-v1", nullptr,
                 make_linear_cost(10e-3, 1e-8));
  rt.add_version(task1, DeviceKind::kCuda, "task1-v2", nullptr,
                 make_linear_cost(6e-3, 6e-9));
  rt.add_version(task1, DeviceKind::kSmp, "task1-v3", nullptr,
                 make_linear_cost(8e-3, 8e-9));

  const TaskTypeId task2 = rt.declare_task("task2");
  rt.add_version(task2, DeviceKind::kCuda, "task2-v1", nullptr,
                 make_constant_cost(15e-3));
  rt.add_version(task2, DeviceKind::kSmp, "task2-v2", nullptr,
                 make_constant_cost(20e-3));

  // Two data-set-size groups for task1 (2 MB, 3 MB), one for task2 (5 MB).
  const RegionId small1 = rt.register_data("task1-2mb", 2 << 20);
  const RegionId large1 = rt.register_data("task1-3mb", 3 << 20);
  const RegionId data2 = rt.register_data("task2-5mb", 5 << 20);
  for (int i = 0; i < 120; ++i) {
    rt.submit(task1, {Access::in(small1)});
  }
  for (int i = 0; i < 80; ++i) {
    rt.submit(task1, {Access::in(large1)});
  }
  for (int i = 0; i < 40; ++i) {
    rt.submit(task2, {Access::in(data2)});
  }
  rt.taskwait();

  auto& versioning = dynamic_cast<VersioningScheduler&>(rt.scheduler());
  std::printf("Table I: TaskVersionSet data structure (live dump)\n\n%s\n",
              versioning.profile().dump().c_str());
  return 0;
}
