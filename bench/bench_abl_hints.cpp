// Ablation — external profile hints (§VII future work #3): a first run
// writes its learned TaskVersionSet tables to a hints file; a second run
// loads them and starts every group in the reliable phase. The delta is
// the learning-phase cost, which the paper calls out as the versioning
// scheduler's main overhead on short runs (Cholesky, §V-B2).
#include <cstdio>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct Outcome {
  double elapsed_ms;
  std::uint64_t slow_runs;
};

Outcome run(std::size_t tasks, const std::string& load,
            const std::string& save) {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 3;
  config.hints_load_path = load;
  config.hints_save_path = save;

  Outcome outcome{};
  {
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("kernel");
    rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                   make_constant_cost(2e-3));
    const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                         make_constant_cost(60e-3));
    const RegionId r = rt.register_data("data", 4 << 20);
    for (std::size_t i = 0; i < tasks; ++i) {
      rt.submit(t, {Access::in(r)});
    }
    rt.taskwait();
    outcome.elapsed_ms = rt.elapsed() * 1e3;
    outcome.slow_runs = rt.run_stats().count(smp);
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: profile hints across runs (gpu 2 ms vs smp 60 ms, "
      "lambda=3)\nShort runs feel the learning phase the most (cf. "
      "Cholesky, §V-B2).\n\n");

  TablePrinter table({"tasks", "cold: elapsed / smp runs",
                      "hinted: elapsed / smp runs"});
  const std::string hints = "/tmp/versa_abl_hints.txt";
  for (const std::size_t tasks : {10u, 30u, 100u, 300u}) {
    std::remove(hints.c_str());
    const Outcome cold = run(tasks, "", hints);
    const Outcome warm = run(tasks, hints, "");
    table.add_row({std::to_string(tasks),
                   format_double(cold.elapsed_ms, 2) + " ms / " +
                       std::to_string(cold.slow_runs),
                   format_double(warm.elapsed_ms, 2) + " ms / " +
                       std::to_string(warm.slow_runs)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
