// Figure 6 — Matrix multiplication performance (GFLOP/s).
//
// Reproduces the series of the paper's Figure 6: the mm-gpu application
// under the dependency-aware (mm-gpu-dep) and affinity (mm-gpu-aff)
// schedulers, and the hybrid mm-hyb application under the versioning
// scheduler (mm-hyb-ver), across 1-8 SMP worker threads and 1-2 GPUs.
// Matrix: 16384 x 16384 doubles (2 GB), tiles of 1024 x 1024 (8 MB).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "perf/report.h"

using namespace versa;
using namespace versa::bench;

int main() {
  std::printf("Figure 6: matrix multiplication performance (GFLOP/s)\n");
  std::printf("matrix 16384x16384 doubles, tile 1024 (8 MB)\n\n");

  TablePrinter table({"config", "mm-gpu-dep", "mm-gpu-aff", "mm-hyb-ver"});
  CsvWriter csv;
  csv.add_row({"smp", "gpus", "mm_gpu_dep", "mm_gpu_aff", "mm_hyb_ver"});
  for (const ResourceConfig& rc : paper_configs()) {
    RunOptions options;
    options.smp = rc.smp;
    options.gpus = rc.gpus;

    options.scheduler = "dep-aware";
    const AppResult dep = run_matmul(options, /*hybrid=*/false);
    options.scheduler = "affinity";
    const AppResult aff = run_matmul(options, /*hybrid=*/false);
    options.scheduler = "versioning";
    const AppResult ver = run_matmul(options, /*hybrid=*/true);

    table.add_row({config_label(rc), format_double(dep.gflops, 1),
                   format_double(aff.gflops, 1),
                   format_double(ver.gflops, 1)});
    csv.add_row({std::to_string(rc.smp), std::to_string(rc.gpus),
                 format_double(dep.gflops, 3), format_double(aff.gflops, 3),
                 format_double(ver.gflops, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv("fig6_matmul_perf", csv);
  return 0;
}
