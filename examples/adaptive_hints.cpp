// Profile hints across runs — the paper's §VII future-work item #3.
//
// Run 1 learns the task-version profile from scratch and persists it on
// exit. Run 2 loads the hints, so every data-set-size group starts in the
// reliable-information phase: no learning-phase executions of the slow
// version, and a shorter makespan. The printed comparison makes the
// learning cost visible.
#include <cstdio>
#include <string>

#include "machine/presets.h"
#include "runtime/runtime.h"

using namespace versa;

namespace {

struct Outcome {
  double elapsed_ms;
  std::uint64_t slow_runs;
};

Outcome run_once(const std::string& load_path, const std::string& save_path) {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 4;
  config.hints_load_path = load_path;
  config.hints_save_path = save_path;

  std::uint64_t slow_runs = 0;
  double elapsed = 0.0;
  {
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("kernel");
    rt.add_version(t, DeviceKind::kCuda, "fast-gpu", nullptr,
                   make_constant_cost(1e-3));
    const VersionId slow = rt.add_version(t, DeviceKind::kSmp, "slow-smp",
                                          nullptr, make_constant_cost(40e-3));
    const RegionId r = rt.register_data("data", 1 << 20);
    for (int i = 0; i < 60; ++i) {
      rt.submit(t, {Access::in(r)});
    }
    rt.taskwait();
    slow_runs = rt.run_stats().count(slow);
    elapsed = rt.elapsed() * 1e3;
  }  // ~Runtime saves the hints
  return {elapsed, slow_runs};
}

}  // namespace

int main() {
  const std::string hints = "/tmp/versa_adaptive_hints.txt";
  std::remove(hints.c_str());

  const Outcome cold = run_once(/*load=*/"", /*save=*/hints);
  std::printf("cold run  : %.2f ms, slow-version executions: %llu\n",
              cold.elapsed_ms,
              static_cast<unsigned long long>(cold.slow_runs));

  const Outcome warm = run_once(/*load=*/hints, /*save=*/"");
  std::printf("hinted run: %.2f ms, slow-version executions: %llu\n",
              warm.elapsed_ms,
              static_cast<unsigned long long>(warm.slow_runs));

  std::printf("hints skip the learning phase: %s\n",
              (warm.slow_runs < cold.slow_runs && warm.elapsed_ms <= cold.elapsed_ms)
                  ? "yes"
                  : "no");
  return warm.slow_runs < cold.slow_runs ? 0 : 1;
}
