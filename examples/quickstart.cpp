// Quickstart: multi-version tasks in ~60 lines.
//
// The C++ analogue of the paper's Figures 1-2: a `scale` task with a main
// GPU implementation plus an SMP implementation attached via the
// `implements` mechanism (declare_task + add_version). The versioning
// scheduler profiles both and splits the work between the devices.
//
// Run:   ./quickstart
// Try:   VERSA_SCHEDULER=versioning ./quickstart   (default)
//        VERSA_LAMBDA=5             ./quickstart
#include <cstdio>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"

using namespace versa;

int main() {
  // A MinoTauro-like node: 4 SMP worker threads + 2 GPUs (simulated).
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;  // virtual time; bodies still execute
  config.scheduler = "versioning";
  Runtime rt(machine, config);

  // #pragma omp target device(cuda)  |  #pragma omp task inout([N]data)
  const TaskTypeId scale = rt.declare_task("scale");
  const auto body = [](TaskContext& ctx) {
    auto* data = static_cast<float*>(ctx.arg(0));
    const std::size_t n = ctx.arg_size(0) / sizeof(float);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] *= 2.0f;
    }
  };
  // Main implementation: "CUDA kernel" (2 ms per call on the model).
  const VersionId gpu = rt.add_version(scale, DeviceKind::kCuda, "cuda", body,
                                       make_constant_cost(2e-3));
  // implements(scale): an SMP version, 8 ms per call.
  const VersionId smp = rt.add_version(scale, DeviceKind::kSmp, "smp", body,
                                       make_constant_cost(8e-3));

  // Register application data: 32 independent vectors.
  std::vector<std::vector<float>> vectors(32, std::vector<float>(1024, 1.0f));
  std::vector<RegionId> regions;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    regions.push_back(rt.register_data("vec" + std::to_string(i),
                                       vectors[i].size() * sizeof(float),
                                       vectors[i].data()));
  }

  // Each call site creates a task; dependences come from the access list.
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const RegionId r : regions) {
      rt.submit(scale, {Access::inout(r)});
    }
  }
  rt.taskwait();

  std::printf("ran %llu tasks in %.1f ms of virtual time\n",
              static_cast<unsigned long long>(rt.run_stats().total_tasks()),
              rt.elapsed() * 1e3);
  std::printf("  cuda version: %llu runs\n",
              static_cast<unsigned long long>(rt.run_stats().count(gpu)));
  std::printf("  smp  version: %llu runs\n",
              static_cast<unsigned long long>(rt.run_stats().count(smp)));
  std::printf("  transfers: %s\n", rt.transfer_stats().summary().c_str());
  std::printf("  vec0[0] = %.1f (expected %.1f)\n", vectors[0][0], 16.0);
  return vectors[0][0] == 16.0f ? 0 : 1;
}
