// versa_daemon — a thin service-mode daemon (DESIGN.md §10).
//
// One VersaService over one shared runtime; N in-process client threads
// play the role of connections, each submitting small task graphs on
// behalf of its tenant and waiting for them. This is the in-process
// flavor of the daemon: the accept loop is the thread spawn below, and a
// socket front end would marshal GraphSpecs into exactly these calls.
//
// Two tenants by default — "batch" (weight 1, generous quota) and
// "interactive" (weight 3, tight in-flight quota) — so the run shows both
// sides of the service: weighted fair-share interleaving between tenants
// and graceful typed rejection when a quota is exceeded (rejected graphs
// are retried after a completed one drains quota headroom).
//
//   versa_daemon [--clients N] [--graphs M] [--backend threads|sim]
//                [--profile-cache FILE]
//
// Exit 0 iff every submitted graph completed or was cleanly rejected and
// the per-tenant accounting reconciles.
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "machine/presets.h"
#include "runtime/config.h"
#include "service/versa_service.h"

namespace {

using namespace versa;
using namespace versa::service;

struct Options {
  int clients = 4;
  int graphs_per_client = 25;
  Backend backend = Backend::kThreads;
  std::string profile_cache;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--graphs M] [--backend threads|sim]"
               " [--profile-cache FILE]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      const char* v = need_value("--clients");
      if (v == nullptr) return false;
      opt.clients = std::atoi(v);
    } else if (arg == "--graphs") {
      const char* v = need_value("--graphs");
      if (v == nullptr) return false;
      opt.graphs_per_client = std::atoi(v);
    } else if (arg == "--backend") {
      const char* v = need_value("--backend");
      if (v == nullptr) return false;
      if (std::strcmp(v, "threads") == 0) {
        opt.backend = Backend::kThreads;
      } else if (std::strcmp(v, "sim") == 0) {
        opt.backend = Backend::kSim;
      } else {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0], v);
        return false;
      }
    } else if (arg == "--profile-cache") {
      const char* v = need_value("--profile-cache");
      if (v == nullptr) return false;
      opt.profile_cache = v;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (opt.clients < 1 || opt.graphs_per_client < 1) {
    std::fprintf(stderr, "%s: --clients and --graphs must be >= 1\n", argv[0]);
    return false;
  }
  return true;
}

/// A small fork-join spec: one source task fans out to `width` readers
/// over a shared region, then a sink joins them through a result region.
GraphSpec make_spec(TaskTypeId type, std::size_t width) {
  GraphSpec spec;
  spec.regions.push_back({"input", 1 << 16});
  spec.regions.push_back({"output", 1 << 12});
  TaskSpec source;
  source.type = type;
  source.accesses.push_back({0, AccessMode::kOut});
  spec.tasks.push_back(source);
  for (std::size_t i = 0; i < width; ++i) {
    TaskSpec reader;
    reader.type = type;
    reader.accesses.push_back({0, AccessMode::kIn});
    reader.accesses.push_back({1, AccessMode::kInOut});
    spec.tasks.push_back(reader);
  }
  TaskSpec sink;
  sink.type = type;
  sink.accesses.push_back({1, AccessMode::kIn});
  spec.tasks.push_back(sink);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  const Machine machine = make_smp_machine(4);
  VersaServiceConfig config;
  config.runtime.backend = opt.backend;
  config.runtime.scheduler = "versioning";
  config.profile_cache_path = opt.profile_cache;
  VersaService svc(machine, config);

  std::atomic<std::uint64_t> executed{0};
  const TaskTypeId work = svc.runtime().declare_task("daemon_work");
  svc.runtime().add_version(
      work, DeviceKind::kSmp, "smp",
      [&executed](TaskContext&) {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
  if (!opt.profile_cache.empty()) {
    const ProfileLoadResult warm = svc.warm_start();
    std::printf("warm start: %s\n", warm.message.c_str());
  }

  // Two tenants. "interactive" gets 3x the dispatch weight but a tight
  // in-flight budget: with enough clients its excess submissions are
  // rejected with kTaskQuota instead of queueing without bound.
  TenantQuota batch_quota;
  batch_quota.weight = 1;
  Session batch = svc.open_session("batch", batch_quota);
  TenantQuota inter_quota;
  inter_quota.weight = 3;
  inter_quota.max_in_flight_tasks = 24;
  Session interactive = svc.open_session("interactive", inter_quota);

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  const GraphSpec spec = make_spec(work, 4);

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    // Alternate tenants across client threads.
    Session session = (c % 2 == 0) ? batch : interactive;
    clients.emplace_back([&, session]() mutable {
      for (int g = 0; g < opt.graphs_per_client; ++g) {
        SubmitResult result = session.submit(spec);
        if (!result.admitted()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          // Quota pressure is transient: drain by waiting a beat, retry
          // once, and drop the graph if the tenant is still over budget.
          std::this_thread::yield();
          result = session.submit(spec);
          if (!result.admitted()) continue;
        }
        session.wait(result.graph);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  svc.shutdown();
  if (!opt.profile_cache.empty() && opt.backend == Backend::kThreads) {
    svc.publish_profile();
  }

  std::printf("graphs completed: %" PRIu64 "  rejected submissions: %" PRIu64
              "  tasks executed: %" PRIu64 "\n",
              completed.load(), rejected.load(), executed.load());
  bool ok = true;
  for (const TenantId tenant : {batch.tenant(), interactive.tenant()}) {
    const TenantStats stats = svc.stats(tenant);
    std::printf(
        "tenant %u: admitted=%" PRIu64 " completed=%" PRIu64
        " rejected=%" PRIu64 " tasks=%" PRIu64 " in-flight=%" PRIu64 "\n",
        tenant, stats.admitted_graphs, stats.completed_graphs,
        stats.rejected_graphs, stats.completed_tasks, stats.in_flight_tasks);
    if (stats.admitted_graphs != stats.completed_graphs ||
        stats.in_flight_tasks != 0) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FAILED: tenant accounting did not reconcile\n");
    return 1;
  }
  if (const auto* sanitizer = svc.runtime().sanitizer()) {
    sanitizer->render(std::cout);
    if (sanitizer->error_count() > 0) {
      std::fprintf(stderr, "FAILED: sanitizer reported %" PRIu64 " error(s)\n",
                   sanitizer->error_count());
      return 3;
    }
  }
  return 0;
}
