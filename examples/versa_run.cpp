// versa_run — command-line driver over the whole library: pick an
// application, a scheduler, a resource configuration (or an external
// machine file) and get the paper's metrics for that single run.
//
//   versa_run --app matmul   --scheduler versioning --smp 8 --gpus 2
//   versa_run --app cholesky --variant gpu --scheduler affinity
//   versa_run --app pbpi     --variant hyb --generations 20 --utilization
//   versa_run --app matmul --machine-file node.txt --trace out.json
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "apps/cholesky.h"
#include "apps/matmul.h"
#include "apps/pbpi.h"
#include "machine/machine_file.h"
#include "machine/presets.h"
#include "perf/calibrate.h"
#include "perf/profile_report.h"
#include "perf/run_stats.h"
#include "sched/versioning_scheduler.h"
#include "perf/sched_trace.h"
#include "perf/timeline.h"
#include "perf/trace.h"
#include "perf/utilization.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

using namespace versa;

namespace {

struct Options {
  std::string app = "matmul";
  std::string scheduler = "versioning";
  std::string variant = "hyb";  // hyb | gpu | smp
  std::size_t smp = 8;
  std::size_t gpus = 2;
  std::size_t n = 0;            // 0 = app default
  std::size_t block = 0;
  std::size_t generations = 50;
  std::uint32_t lambda = 3;
  std::uint64_t seed = 42;
  bool prefetch = true;
  bool utilization = false;
  bool analyze = false;
  std::string machine_file;
  std::string trace_path;
  std::string sched_trace_path;
  std::string hints_load;
  std::string hints_save;
  std::string profile_load;
  std::string profile_save;
  bool drift = false;
  std::string granularity;  // empty = leave config default (off / env)
  std::string sanitize;     // empty = leave config default (off / env)
  std::string sanitize_csv;
};

void print_usage() {
  std::printf(
      "usage: versa_run [flags]\n"
      "  --app <matmul|cholesky|pbpi>   workload (default matmul)\n"
      "  --scheduler <name>             scheduling policy (see\n"
      "                                 --list-policies)\n"
      "  --list-policies                print the valid policy names and\n"
      "                                 exit\n"
      "  --variant <hyb|gpu|smp>        application version set\n"
      "  --smp <n> --gpus <n>           MinoTauro-node resources\n"
      "  --machine-file <path>          load machine description instead\n"
      "  --n <elems> --block <elems>    problem/tile size override\n"
      "  --generations <n>              PBPI generations\n"
      "  --lambda <n>                   learning threshold\n"
      "  --granularity <off|auto|N>     adaptive task granularity\n"
      "  --sanitize <off|spec|race>     dependence-spec sanitizer mode\n"
      "  --sanitize-csv <path>          write the sanitizer findings as\n"
      "                                 CSV (versa_trace_report\n"
      "                                 --sanitize-report replays it)\n"
      "                                 (DESIGN.md s11): auto enables the\n"
      "                                 profile-guided split/fuse\n"
      "                                 controller, an integer N > 1 always\n"
      "                                 splits recipe-covered tasks N ways;\n"
      "                                 default off (env VERSA_GRANULARITY)\n"
      "  --seed <n>                     simulation seed\n"
      "  --no-prefetch                  disable transfer overlap\n"
      "  --utilization                  print per-worker utilization\n"
      "  --analyze                      print compute/transfer overlap\n"
      "  --calibrate                    measure this host's kernel rates\n"
      "                                 and exit\n"
      "  --trace <path>                 write a Chrome trace\n"
      "  --sched-trace <path>           record the scheduler decision\n"
      "                                 trace: prints the tail as a table\n"
      "                                 and writes busy-counter tracks as\n"
      "                                 Chrome-trace JSON to <path>; a\n"
      "                                 .csv suffix writes the full event\n"
      "                                 dump for versa_trace_report\n"
      "  --hints-load/--hints-save <p>  legacy profile hints files\n"
      "  --profile-load <path>          warm-start from a profile store\n"
      "  --profile-save <path>          persist the learned profile\n"
      "  --drift                        drift-adaptive relearning\n");
}

bool parse_args(int argc, char** argv, Options& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--list-policies") {
      for (const std::string& name : scheduler_factory_names()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (flag == "--calibrate") {
      const HostCalibration calibration = calibrate_host();
      std::printf("host calibration (single core):\n");
      std::printf("  dgemm:   %.2f GFLOP/s\n",
                  calibration.dgemm_flops_per_second / 1e9);
      std::printf("  stencil: %.2f GB/s\n",
                  calibration.stencil_bytes_per_second / 1e9);
      std::printf("  spotrf:  %.2f GFLOP/s\n",
                  calibration.spotrf_flops_per_second / 1e9);
      std::exit(0);
    } else if (flag == "--no-prefetch") {
      options.prefetch = false;
    } else if (flag == "--drift") {
      options.drift = true;
    } else if (flag == "--utilization") {
      options.utilization = true;
    } else if (flag == "--analyze") {
      options.analyze = true;
    } else if ((value = need_value(i)) == nullptr) {
      return false;
    } else if (flag == "--app") {
      options.app = value;
    } else if (flag == "--scheduler") {
      options.scheduler = value;
    } else if (flag == "--variant") {
      options.variant = value;
    } else if (flag == "--smp") {
      options.smp = std::strtoull(value, nullptr, 10);
    } else if (flag == "--gpus") {
      options.gpus = std::strtoull(value, nullptr, 10);
    } else if (flag == "--n") {
      options.n = std::strtoull(value, nullptr, 10);
    } else if (flag == "--block") {
      options.block = std::strtoull(value, nullptr, 10);
    } else if (flag == "--generations") {
      options.generations = std::strtoull(value, nullptr, 10);
    } else if (flag == "--granularity") {
      options.granularity = value;
    } else if (flag == "--sanitize") {
      options.sanitize = value;
    } else if (flag == "--sanitize-csv") {
      options.sanitize_csv = value;
    } else if (flag == "--lambda") {
      options.lambda = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--machine-file") {
      options.machine_file = value;
    } else if (flag == "--trace") {
      options.trace_path = value;
    } else if (flag == "--sched-trace") {
      options.sched_trace_path = value;
    } else if (flag == "--hints-load") {
      options.hints_load = value;
    } else if (flag == "--hints-save") {
      options.hints_save = value;
    } else if (flag == "--profile-load") {
      options.profile_load = value;
    } else if (flag == "--profile-save") {
      options.profile_save = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void print_version_split(const Runtime& rt, TaskTypeId type) {
  for (VersionId v : rt.version_registry().versions(type)) {
    const TaskVersion& version = rt.version_registry().version(v);
    std::printf("    %-8s (%s): %llu runs (%.1f %%)\n", version.name.c_str(),
                to_string(version.device),
                static_cast<unsigned long long>(rt.run_stats().count(v)),
                rt.run_stats().percent(type, v));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }

  Machine machine = [&] {
    if (!options.machine_file.empty()) {
      MachineParseResult parsed = load_machine(options.machine_file);
      if (!parsed.machine) {
        std::fprintf(stderr, "machine file error: %s\n", parsed.error.c_str());
        std::exit(2);
      }
      return std::move(*parsed.machine);
    }
    return make_minotauro_node(options.smp, options.gpus);
  }();

  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = options.scheduler;
  config.profile.lambda = options.lambda;
  config.seed = options.seed;
  config.prefetch = options.prefetch;
  config.hints_load_path = options.hints_load;
  config.hints_save_path = options.hints_save;
  config.profile_load_path = options.profile_load;
  config.profile_save_path = options.profile_save;
  config.profile.drift.enabled = options.drift;
  config.sched_trace = !options.sched_trace_path.empty();
  if (!options.granularity.empty() &&
      !core::parse_granularity(options.granularity, config.granularity)) {
    std::fprintf(stderr,
                 "invalid --granularity '%s' (expected off, auto or an "
                 "integer)\n",
                 options.granularity.c_str());
    return 2;
  }
  if (!options.sanitize.empty() &&
      !sanitize::parse_sanitize_mode(options.sanitize, config.sanitize.mode)) {
    std::fprintf(stderr, "invalid --sanitize '%s' (expected off, spec or "
                 "race)\n", options.sanitize.c_str());
    return 2;
  }
  if (make_scheduler(options.scheduler) == nullptr) {
    std::string valid;
    for (const std::string& name : scheduler_factory_names()) {
      if (!valid.empty()) valid += ", ";
      valid += name;
    }
    std::fprintf(stderr, "unknown scheduler '%s' — valid policies: %s\n",
                 options.scheduler.c_str(), valid.c_str());
    return 2;
  }

  Runtime rt(machine, config);
  std::printf("machine: %s | scheduler: %s | app: %s (%s)\n",
              machine.summary().c_str(), options.scheduler.c_str(),
              options.app.c_str(), options.variant.c_str());

  double flops = 0.0;
  std::vector<TaskTypeId> report_types;
  if (options.app == "matmul") {
    apps::MatmulParams params;
    if (options.n != 0) params.n = options.n;
    if (options.block != 0) params.tile = options.block;
    params.hybrid = options.variant == "hyb";
    apps::MatmulApp app(rt, params);
    app.run();
    flops = app.total_flops();
    report_types.push_back(app.task_type());
  } else if (options.app == "cholesky") {
    apps::CholeskyParams params;
    if (options.n != 0) params.n = options.n;
    if (options.block != 0) params.block = options.block;
    params.potrf = options.variant == "hyb"   ? apps::PotrfVariant::kHybrid
                   : options.variant == "smp" ? apps::PotrfVariant::kSmp
                                              : apps::PotrfVariant::kGpu;
    apps::CholeskyApp app(rt, params);
    app.run();
    flops = app.total_flops();
    report_types.push_back(app.potrf_type());
  } else if (options.app == "pbpi") {
    apps::PbpiParams params;
    params.generations = options.generations;
    params.variant = options.variant == "hyb"   ? apps::PbpiVariant::kHybrid
                     : options.variant == "smp" ? apps::PbpiVariant::kSmp
                                                : apps::PbpiVariant::kGpu;
    apps::PbpiApp app(rt, params);
    app.run();
    report_types.push_back(app.loop1_type());
    report_types.push_back(app.loop2_type());
  } else {
    std::fprintf(stderr, "unknown app '%s'\n", options.app.c_str());
    return 2;
  }

  std::printf("elapsed: %.3f s (virtual)\n", rt.elapsed());
  if (flops > 0.0) {
    std::printf("performance: %.1f GFLOP/s\n", gflops(flops, rt.elapsed()));
  }
  std::printf("tasks: %llu\n",
              static_cast<unsigned long long>(rt.run_stats().total_tasks()));
  std::printf("transfers: %s\n", rt.transfer_stats().summary().c_str());
  for (const TaskTypeId type : report_types) {
    std::printf("  %s versions:\n",
                rt.version_registry().task_name(type).c_str());
    print_version_split(rt, type);
  }
  if (const auto* granularity = rt.granularity()) {
    const auto& stats = granularity->stats();
    std::printf("granularity [%s]: %llu splits (%llu children), %llu fuses "
                "(%llu absorbed), %llu reversals\n",
                core::to_string(granularity->config().mode),
                static_cast<unsigned long long>(stats.splits),
                static_cast<unsigned long long>(stats.children_created),
                static_cast<unsigned long long>(stats.fuses),
                static_cast<unsigned long long>(stats.tasks_fused),
                static_cast<unsigned long long>(stats.reversals));
  }
  if (const auto* sanitizer = rt.sanitizer()) {
    sanitizer->render(std::cout);
    if (!options.sanitize_csv.empty()) {
      if (sanitizer->write_csv_report(options.sanitize_csv)) {
        std::printf("sanitize report written to %s\n",
                    options.sanitize_csv.c_str());
      } else {
        std::fprintf(stderr, "could not write sanitize report to %s\n",
                     options.sanitize_csv.c_str());
      }
    }
  }
  if (!options.profile_load.empty() || !options.hints_load.empty()) {
    std::printf("%s\n", profile_load_summary(rt.profile_load_result()).c_str());
  }
  if (const auto* versioning =
          dynamic_cast<const VersioningScheduler*>(&rt.scheduler())) {
    std::printf("learning-phase executions: %llu\n",
                static_cast<unsigned long long>(
                    versioning->learning_executions()));
    const auto& events = versioning->profile().drift_events();
    if (!events.empty()) {
      std::printf("drift relearn events: %zu\n%s", events.size(),
                  drift_event_table(rt.version_registry(), events).c_str());
    }
  }
  if (options.utilization) {
    const auto rows =
        compute_utilization(rt.task_graph(), machine, rt.elapsed());
    std::printf("\n%s", utilization_table(rows).c_str());
    std::printf("mean utilization: %.1f %%\n", mean_utilization(rows) * 100.0);
  }
  if (options.analyze) {
    const auto* records = rt.transfer_records();
    if (records != nullptr) {
      const TimelineStats stats =
          analyze_timeline(rt.task_graph(), *records, rt.elapsed());
      std::printf("\n%s", timeline_report(stats).c_str());
    }
  }
  if (!options.trace_path.empty()) {
    if (write_trace(options.trace_path, rt.task_graph(), machine,
                    rt.version_registry(), rt.transfer_records())) {
      std::printf("trace written to %s\n", options.trace_path.c_str());
    } else {
      std::fprintf(stderr, "could not write trace to %s\n",
                   options.trace_path.c_str());
    }
  }
  if (!options.sched_trace_path.empty()) {
    const auto& trace = rt.scheduler().decision_trace();
    std::printf("\nscheduler decisions (last 32):\n%s",
                sched_trace_table(trace, rt.version_registry(), machine, 32)
                    .c_str());
    // A .csv suffix selects the full-fidelity dump versa_trace_report
    // replays; anything else gets the Chrome-trace counter export.
    const std::string& path = options.sched_trace_path;
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    const bool written =
        csv ? write_sched_trace_csv(path, trace, rt.scheduler().name())
            : write_sched_trace(path, trace, machine);
    if (written) {
      std::printf("scheduler trace written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not write scheduler trace to %s\n",
                   path.c_str());
    }
  }
  if (const auto* sanitizer = rt.sanitizer();
      sanitizer != nullptr && sanitizer->error_count() > 0) {
    std::fprintf(stderr, "sanitizer: %llu error(s) detected\n",
                 static_cast<unsigned long long>(sanitizer->error_count()));
    return 3;
  }
  return 0;
}
