// PBPI-style MCMC pipeline (§V-B3) with real arithmetic at small scale:
// three taskified loops per generation, loop 3 pinned to the SMP, and
// hybrid GPU+SMP versions for loops 1 and 2. Verifies the accumulated
// log-likelihood against a sequential reference (bit-exact) and prints the
// loop-level version split — compare with the paper's Figures 14/15.
#include <cstdio>

#include "apps/pbpi.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

using namespace versa;

int main() {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  Runtime rt(machine, config);

  apps::PbpiParams params;
  params.sites_bytes = 512 << 10;   // 512 KB dataset (paper: 500 MB)
  params.chunks_bytes = 256 << 10;
  params.slices = 8;
  params.chunks = 24;
  params.generations = 20;
  params.variant = apps::PbpiVariant::kHybrid;
  params.real_compute = true;
  apps::PbpiApp app(rt, params);

  std::printf("PBPI: %zu generations x (%zu loop1 + %zu loop2 + 1 loop3) "
              "tasks\n",
              params.generations, params.slices, params.chunks);
  app.run();

  std::printf("finished in %.2f ms of virtual time\n", rt.elapsed() * 1e3);
  auto report_loop = [&](const char* name, VersionId gpu, VersionId smp) {
    std::printf("  %s: %llu on GPU, %llu on SMP\n", name,
                static_cast<unsigned long long>(rt.run_stats().count(gpu)),
                static_cast<unsigned long long>(rt.run_stats().count(smp)));
  };
  report_loop("loop1", app.loop1_gpu(), app.loop1_smp());
  report_loop("loop2", app.loop2_gpu(), app.loop2_smp());
  std::printf("transfers: %s\n", rt.transfer_stats().summary().c_str());

  const double got = app.likelihood();
  const double want = app.reference_likelihood();
  std::printf("log-likelihood = %.6f (reference %.6f)\n", got, want);
  return got == want ? 0 : 1;
}
