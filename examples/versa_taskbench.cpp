// versa_taskbench — task-bench-style METG harness over the synthetic
// dependence-graph generator (src/taskbench, DESIGN.md §14).
//
// Two modes:
//
//   fixed-cost (default) — run each requested graph family at one task
//   cost per (policy × backend) and report per-family elapsed time and
//   parallel efficiency. All families of one (policy, backend) cell share
//   a single Runtime, so a --sched-trace CSV carries one task type per
//   family and versa_trace_report's per-type breakdown separates them.
//
//   --metg — bisect the per-task compute cost until parallel efficiency
//   crosses the target (50% by default) and report the minimum effective
//   task granularity per (family × policy × backend), task-bench's
//   METG(50%) metric. Each probe builds a fresh Runtime so learned
//   profiles never leak between costs.
//
//   versa_taskbench --family stencil --quick
//   versa_taskbench --metg --family all --policy all --backend both
//   versa_taskbench --family stencil --backend threads --sched-trace t.csv
//
// Run with --help for the full flag list.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "machine/presets.h"
#include "perf/sched_trace.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"
#include "taskbench/graph_spec.h"
#include "taskbench/metg.h"
#include "taskbench/runner.h"

using namespace versa;
using namespace versa::taskbench;

namespace {

struct Options {
  std::string family = "stencil";  // family name or "all"
  std::string policy = "versioning";  // policy name or "all"
  std::string backend = "sim";        // sim | threads | both
  std::uint32_t width = 16;
  std::uint32_t steps = 8;
  std::uint64_t payload = 4096;
  std::uint32_t fan = 2;
  std::uint64_t seed = 42;
  std::size_t smp = 4;
  std::size_t gpus = 2;
  double task_cost = 1e-3;
  bool metg = false;
  double metg_lo = 1e-5;
  double metg_hi = 1e-1;
  double metg_target = 0.5;
  double metg_tolerance = 1.1;
  std::string json_path;
  std::string sched_trace_path;
};

void print_usage() {
  std::printf(
      "usage: versa_taskbench [flags]\n"
      "  --family <name|all>        graph family: trivial, chain, stencil,\n"
      "                             stencil2d, fft, tree, random, or all\n"
      "                             (default stencil)\n"
      "  --policy <name|all>        scheduling policy (see --list-policies)\n"
      "  --backend <sim|threads|both>  execution backend (default sim)\n"
      "  --width <n> --steps <n>    graph shape (default 16 x 8; fft/tree\n"
      "                             round width down to a power of two,\n"
      "                             stencil2d to a square)\n"
      "  --payload <bytes>          bytes per dependence edge (default 4096)\n"
      "  --fan <n>                  parents per node, random family only\n"
      "  --seed <n>                 generator seed (default 42)\n"
      "  --smp <n> --gpus <n>       MinoTauro-node resources (default 4+2)\n"
      "  --task-cost <seconds>      fixed-cost mode task duration\n"
      "                             (default 1e-3)\n"
      "  --metg                     bisect task cost for the minimum\n"
      "                             effective task granularity instead of a\n"
      "                             single fixed-cost run\n"
      "  --metg-lo/--metg-hi <s>    bisection bracket (default 1e-5..1e-1)\n"
      "  --metg-target <frac>       efficiency target (default 0.5)\n"
      "  --metg-tol <factor>        stop when hi/lo <= factor (default 1.1)\n"
      "  --quick                    CI preset: 8x4 graph, 1 KiB payloads,\n"
      "                             2+1 workers, 200 us tasks, coarse\n"
      "                             bisection (later flags override)\n"
      "  --json <path>              write all result rows as JSON\n"
      "  --sched-trace <path>       record the scheduler decision trace of\n"
      "                             the (single) requested policy x backend\n"
      "                             cell; a .csv suffix writes the full\n"
      "                             event dump for versa_trace_report\n"
      "  --list-policies            print valid policy names and exit\n"
      "  --list-families            print valid family names and exit\n");
}

bool parse_args(int argc, char** argv, Options& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--list-policies") {
      for (const std::string& name : scheduler_factory_names()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (flag == "--list-families") {
      for (const GraphFamily family : all_families()) {
        std::printf("%s\n", to_string(family));
      }
      std::exit(0);
    } else if (flag == "--metg") {
      options.metg = true;
    } else if (flag == "--quick") {
      options.width = 8;
      options.steps = 4;
      options.payload = 1024;
      options.smp = 2;
      options.gpus = 1;
      options.task_cost = 200e-6;
      options.metg_lo = 2e-5;
      options.metg_hi = 2e-2;
      options.metg_tolerance = 2.0;
    } else if ((value = need_value(i)) == nullptr) {
      return false;
    } else if (flag == "--family") {
      options.family = value;
    } else if (flag == "--policy") {
      options.policy = value;
    } else if (flag == "--backend") {
      options.backend = value;
    } else if (flag == "--width") {
      options.width = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--steps") {
      options.steps = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--payload") {
      options.payload = std::strtoull(value, nullptr, 10);
    } else if (flag == "--fan") {
      options.fan = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--smp") {
      options.smp = std::strtoull(value, nullptr, 10);
    } else if (flag == "--gpus") {
      options.gpus = std::strtoull(value, nullptr, 10);
    } else if (flag == "--task-cost") {
      options.task_cost = std::strtod(value, nullptr);
    } else if (flag == "--metg-lo") {
      options.metg_lo = std::strtod(value, nullptr);
    } else if (flag == "--metg-hi") {
      options.metg_hi = std::strtod(value, nullptr);
    } else if (flag == "--metg-target") {
      options.metg_target = std::strtod(value, nullptr);
    } else if (flag == "--metg-tol") {
      options.metg_tolerance = std::strtod(value, nullptr);
    } else if (flag == "--json") {
      options.json_path = value;
    } else if (flag == "--sched-trace") {
      options.sched_trace_path = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

const char* to_string(Backend backend) {
  return backend == Backend::kSim ? "sim" : "threads";
}

/// One result row — fixed-cost fields or METG fields depending on mode.
struct ResultRow {
  GraphFamily family = GraphFamily::kStencil1D;
  std::string policy;
  Backend backend = Backend::kSim;
  GraphOracle oracle;
  // fixed-cost mode
  double task_cost = 0.0;
  double elapsed = 0.0;
  double efficiency = 0.0;
  // METG mode
  MetgResult metg;
};

const char* metg_status(const MetgResult& result) {
  if (result.all_overhead) return "all_overhead";
  if (result.zero_overhead) return "zero_overhead";
  return "found";
}

/// Submit one family's graph and run it to completion, returning the
/// family's own makespan: virtual-time delta of the monotone elapsed()
/// on sim, wall-clock around submit+taskwait on threads (so idle host
/// time between families never leaks into the measurement).
double run_family(Runtime& rt, const GraphSpec& spec, Backend backend,
                  double task_cost) {
  SubmitGraphOptions submit_options;
  submit_options.task_cost = task_cost;
  submit_options.spin_bodies = backend == Backend::kThreads;
  const double virtual_before = rt.elapsed();
  const auto wall_before = std::chrono::steady_clock::now();
  submit_graph(rt, spec, submit_options);
  rt.taskwait();
  if (backend == Backend::kThreads) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_before)
        .count();
  }
  return rt.elapsed() - virtual_before;
}

RuntimeConfig make_config(const Options& options, const std::string& policy,
                          Backend backend, bool trace) {
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = policy;
  config.seed = options.seed;
  config.sched_trace = trace;
  return config;
}

void write_json(const Options& options, const Machine& machine,
                const std::vector<ResultRow>& rows) {
  std::ofstream out(options.json_path);
  if (!out) {
    std::fprintf(stderr, "could not write JSON to %s\n",
                 options.json_path.c_str());
    return;
  }
  out << "{\n"
      << "  \"mode\": \"" << (options.metg ? "metg" : "fixed") << "\",\n"
      << "  \"machine\": \"" << machine.summary() << "\",\n"
      << "  \"workers\": " << machine.worker_count() << ",\n"
      << "  \"width\": " << options.width << ",\n"
      << "  \"steps\": " << options.steps << ",\n"
      << "  \"payload_bytes\": " << options.payload << ",\n"
      << "  \"seed\": " << options.seed << ",\n"
      << "  \"metg_target\": " << options.metg_target << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    out << "    {\"family\": \"" << to_string(row.family) << "\", "
        << "\"policy\": \"" << row.policy << "\", "
        << "\"backend\": \"" << to_string(row.backend) << "\", "
        << "\"nodes\": " << row.oracle.nodes << ", "
        << "\"edges\": " << row.oracle.edges << ", "
        << "\"critical_path\": " << row.oracle.critical_path << ", ";
    if (options.metg) {
      // JSON has no inf: all-overhead cells report null.
      out << "\"metg_seconds\": ";
      if (std::isfinite(row.metg.metg)) {
        out << row.metg.metg;
      } else {
        out << "null";
      }
      out << ", \"efficiency\": " << row.metg.efficiency
          << ", \"evaluations\": " << row.metg.evaluations
          << ", \"status\": \"" << metg_status(row.metg) << "\"";
    } else {
      out << "\"task_cost\": " << row.task_cost << ", "
          << "\"elapsed\": " << row.elapsed << ", "
          << "\"efficiency\": " << row.efficiency;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("results written to %s\n", options.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }

  std::vector<GraphFamily> families;
  if (options.family == "all") {
    families = all_families();
  } else {
    GraphFamily family;
    if (!parse_family(options.family, family)) {
      std::fprintf(stderr,
                   "unknown family '%s' (see --list-families)\n",
                   options.family.c_str());
      return 2;
    }
    families.push_back(family);
  }

  std::vector<std::string> policies;
  if (options.policy == "all") {
    policies = scheduler_factory_names();
  } else if (make_scheduler(options.policy) != nullptr) {
    policies.push_back(options.policy);
  } else {
    std::fprintf(stderr, "unknown policy '%s' (see --list-policies)\n",
                 options.policy.c_str());
    return 2;
  }

  std::vector<Backend> backends;
  if (options.backend == "sim") {
    backends = {Backend::kSim};
  } else if (options.backend == "threads") {
    backends = {Backend::kThreads};
  } else if (options.backend == "both") {
    backends = {Backend::kSim, Backend::kThreads};
  } else {
    std::fprintf(stderr, "unknown backend '%s' (sim, threads or both)\n",
                 options.backend.c_str());
    return 2;
  }

  const bool trace = !options.sched_trace_path.empty();
  if (trace && (options.metg || policies.size() != 1 || backends.size() != 1)) {
    std::fprintf(stderr,
                 "--sched-trace needs fixed-cost mode with exactly one "
                 "--policy and one --backend\n");
    return 2;
  }

  const Machine machine = make_minotauro_node(options.smp, options.gpus);
  const std::size_t workers = machine.worker_count();
  std::printf("machine: %s | families: %zu | policies: %zu | backends: %zu\n",
              machine.summary().c_str(), families.size(), policies.size(),
              backends.size());

  // Generate every requested graph once: generation is deterministic in
  // the parameters, so all (policy x backend) cells share the same specs.
  std::vector<GraphSpec> specs;
  for (const GraphFamily family : families) {
    TaskBenchParams params;
    params.family = family;
    params.width = options.width;
    params.steps = options.steps;
    params.payload_bytes = options.payload;
    params.fan = options.fan;
    params.seed = options.seed;
    specs.push_back(generate_graph(params));
    const GraphSpec& spec = specs.back();
    std::printf("graph %-9s %" PRIu64 " nodes, %zu edges, critical path %u\n",
                to_string(family), spec.node_count, spec.edges.size(),
                oracle_for(spec.params).critical_path);
  }

  std::vector<ResultRow> rows;
  if (options.metg) {
    std::printf("\n%-9s  %-20s  %-7s  %12s  %6s  %5s  %s\n", "family",
                "policy", "backend", "METG", "eff", "evals", "status");
    for (const Backend backend : backends) {
      for (const std::string& policy : policies) {
        for (const GraphSpec& spec : specs) {
          const GraphOracle oracle = oracle_for(spec.params);
          // Each probe gets a fresh Runtime: profiles learned at one task
          // cost must not warm-start the next probe.
          const EfficiencyFn probe = [&](Duration cost) {
            Runtime rt(machine, make_config(options, policy, backend, false));
            const double elapsed = run_family(rt, spec, backend, cost);
            return parallel_efficiency(oracle, cost, workers, elapsed);
          };
          ResultRow row;
          row.family = spec.params.family;
          row.policy = policy;
          row.backend = backend;
          row.oracle = oracle;
          row.metg =
              metg_bisect(probe, options.metg_lo, options.metg_hi,
                          options.metg_target, options.metg_tolerance);
          rows.push_back(row);
          if (std::isfinite(row.metg.metg)) {
            std::printf("%-9s  %-20s  %-7s  %9.0f us  %5.1f%%  %5d  %s\n",
                        to_string(row.family), policy.c_str(),
                        to_string(backend), row.metg.metg * 1e6,
                        row.metg.efficiency * 100.0, row.metg.evaluations,
                        metg_status(row.metg));
          } else {
            std::printf("%-9s  %-20s  %-7s  %12s  %6s  %5d  %s\n",
                        to_string(row.family), policy.c_str(),
                        to_string(backend), "inf", "-", row.metg.evaluations,
                        metg_status(row.metg));
          }
        }
      }
    }
  } else {
    std::printf("\n%-9s  %-20s  %-7s  %10s  %6s\n", "family", "policy",
                "backend", "elapsed", "eff");
    for (const Backend backend : backends) {
      for (const std::string& policy : policies) {
        // One Runtime per cell runs every family, so the decision trace
        // carries one task type per family (the per-type breakdown in
        // versa_trace_report separates them).
        Runtime rt(machine, make_config(options, policy, backend, trace));
        for (const GraphSpec& spec : specs) {
          const GraphOracle oracle = oracle_for(spec.params);
          ResultRow row;
          row.family = spec.params.family;
          row.policy = policy;
          row.backend = backend;
          row.oracle = oracle;
          row.task_cost = options.task_cost;
          row.elapsed = run_family(rt, spec, backend, options.task_cost);
          row.efficiency = parallel_efficiency(oracle, options.task_cost,
                                               workers, row.elapsed);
          rows.push_back(row);
          std::printf("%-9s  %-20s  %-7s  %8.2f ms  %5.1f%%\n",
                      to_string(row.family), policy.c_str(),
                      to_string(backend), row.elapsed * 1e3,
                      row.efficiency * 100.0);
        }
        if (trace) {
          // Legend: submit_graph declares one type per family, so the
          // trace's per-type breakdown maps back to families by name.
          std::printf("\ntrace task types:\n");
          for (TaskTypeId type = 0;
               type < rt.version_registry().task_type_count(); ++type) {
            std::printf("  type %u = %s\n", type,
                        rt.version_registry().task_name(type).c_str());
          }
          const auto& decision_trace = rt.scheduler().decision_trace();
          const std::string& path = options.sched_trace_path;
          const bool csv = path.size() >= 4 &&
                           path.compare(path.size() - 4, 4, ".csv") == 0;
          const bool written =
              csv ? write_sched_trace_csv(path, decision_trace,
                                          rt.scheduler().name())
                  : write_sched_trace(path, decision_trace, machine);
          if (written) {
            std::printf("scheduler trace written to %s\n", path.c_str());
          } else {
            std::fprintf(stderr, "could not write scheduler trace to %s\n",
                         path.c_str());
          }
        }
      }
    }
  }

  if (!options.json_path.empty()) {
    write_json(options, machine, rows);
  }
  return 0;
}
