// Tiled Cholesky factorization with a multi-version potrf task (§V-B2).
//
// Factorizes a real SPD matrix through the runtime (blocks actually
// execute), prints the per-kernel task counts and where potrf ran, and
// verifies the factorization against the original matrix. Shows the
// critical-path effect the paper discusses: potrf placement decides how
// much parallelism the trailing updates can exploit.
#include <cstdio>

#include "apps/cholesky.h"
#include "machine/presets.h"
#include "perf/trace.h"
#include "runtime/runtime.h"

using namespace versa;

int main(int argc, char** argv) {
  const bool dump_trace = argc > 1 && std::string(argv[1]) == "--trace";

  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  apps::CholeskyParams params;
  params.n = 128;
  params.block = 32;
  params.potrf = apps::PotrfVariant::kHybrid;
  params.real_compute = true;
  apps::CholeskyApp app(rt, params);

  std::printf("Cholesky %zux%zu floats, %zux%zu blocks (%zu tasks)\n",
              params.n, params.n, params.block, params.block,
              app.task_count());
  app.run();

  std::printf("finished in %.2f ms of virtual time\n", rt.elapsed() * 1e3);
  std::printf("potrf executions: %llu on GPU (MAGMA), %llu on SMP (CBLAS)\n",
              static_cast<unsigned long long>(
                  rt.run_stats().count(app.potrf_gpu_version())),
              static_cast<unsigned long long>(
                  rt.run_stats().count(app.potrf_smp_version())));
  std::printf("transfers: %s\n", rt.transfer_stats().summary().c_str());

  const double error = app.max_error();
  std::printf("max |L*L^T - A| = %.6f\n", error);

  if (dump_trace) {
    const char* path = "cholesky_trace.json";
    if (write_trace(path, rt.task_graph(), machine, rt.version_registry())) {
      std::printf("timeline written to %s (open in about://tracing)\n", path);
    }
  }
  return error < 1e-2 ? 0 : 1;
}
