// Heat-diffusion stencil with halo (array-section) dependences — the
// OmpSs-style pattern the paper's dependence clauses were designed for:
// each slab task declares `in` on one-float strips of its neighbours, so
// consecutive sweeps overlap wherever the halo data is already available.
// Runs hybrid (GPU + SMP versions) under the versioning scheduler and
// verifies against a sequential reference.
#include <cstdio>

#include "apps/jacobi.h"
#include "machine/presets.h"
#include "perf/utilization.h"
#include "runtime/runtime.h"

using namespace versa;

int main() {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  apps::JacobiParams params;
  params.cells = 1 << 16;
  params.slabs = 16;
  params.sweeps = 30;
  params.hybrid = true;
  params.real_compute = true;
  apps::JacobiApp app(rt, params);

  std::printf("heat stencil: %zu cells, %zu slabs, %zu sweeps (%zu tasks)\n",
              params.cells, params.slabs, params.sweeps, app.task_count());
  app.run();

  std::printf("finished in %.3f ms of virtual time\n", rt.elapsed() * 1e3);
  std::printf("version split: %llu on GPU, %llu on SMP\n",
              static_cast<unsigned long long>(
                  rt.run_stats().count(app.gpu_version())),
              static_cast<unsigned long long>(
                  rt.run_stats().count(app.smp_version())));
  std::printf("transfers: %s\n", rt.transfer_stats().summary().c_str());

  const auto utilization =
      compute_utilization(rt.task_graph(), machine, rt.elapsed());
  std::printf("mean worker utilization: %.1f %%\n",
              mean_utilization(utilization) * 100.0);

  const double error = app.max_error();
  std::printf("max |field - reference| = %.8f\n", error);
  return error < 1e-6 ? 0 : 1;
}
