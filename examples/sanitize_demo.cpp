// sanitize_demo — the dependence-spec sanitizer catching a mis-declared
// task (DESIGN.md §12).
//
// Two pipelines over a shared accumulator region:
//
//   producer: out(acc)            — writes the whole accumulator
//   worker:   in(src_i) inout(acc) — folds one source into it
//
// The correct program declares every byte it touches, so the analyzer
// orders all conflicting pairs and the sanitizer stays silent. With
// --buggy, the worker drops its inout(acc) clause but keeps writing the
// accumulator: the analyzer no longer serializes the workers, and the
// sanitizer reports the write both as out-of-spec (undeclared bytes) and
// as a determinacy race between unordered workers.
//
//   sanitize_demo [--buggy] [--backend sim|threads] [--csv <path>]
//
// Exit: 0 when the sanitizer found nothing, 3 when it reported errors
// (the CI fixture asserts --buggy exits non-zero), 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"

using namespace versa;

int main(int argc, char** argv) {
  bool buggy = false;
  Backend backend = Backend::kSim;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--buggy") {
      buggy = true;
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "sim") {
        backend = Backend::kSim;
      } else if (value == "threads") {
        backend = Backend::kThreads;
      } else {
        std::fprintf(stderr, "unknown backend '%s'\n", value.c_str());
        return 2;
      }
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sanitize_demo [--buggy] [--backend sim|threads]"
                   " [--csv <path>]\n");
      return 2;
    }
  }

  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = "fifo";
  config.sanitize.mode = sanitize::SanitizeMode::kRace;
  Runtime rt(machine, config);

  constexpr std::size_t kElems = 256;
  std::vector<float> acc(kElems, 0.0f);
  std::vector<std::vector<float>> sources(4,
                                          std::vector<float>(kElems, 1.0f));
  const RegionId acc_region =
      rt.register_data("acc", kElems * sizeof(float), acc.data());
  std::vector<RegionId> src_regions;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    src_regions.push_back(rt.register_data("src" + std::to_string(i),
                                           kElems * sizeof(float),
                                           sources[i].data()));
  }

  const TaskTypeId producer = rt.declare_task("producer");
  rt.add_version(producer, DeviceKind::kSmp, "smp", [](TaskContext& ctx) {
    auto* out = static_cast<float*>(ctx.arg(0));
    AccessWitness(ctx).write(0);
    for (std::size_t e = 0; e < kElems; ++e) out[e] = 0.0f;
  });

  // The worker body always touches the accumulator and says so through
  // its witness — the bug under --buggy is in the *declaration* below,
  // exactly the class of error the sanitizer exists to catch.
  const TaskTypeId worker = rt.declare_task("worker");
  rt.add_version(worker, DeviceKind::kSmp, "smp",
                 [&acc, acc_region](TaskContext& ctx) {
                   auto* src = static_cast<const float*>(ctx.arg(0));
                   AccessWitness witness(ctx);
                   witness.read(0);
                   witness.touch_bytes(acc_region, AccessMode::kInOut, 0,
                                       kElems * sizeof(float));
                   for (std::size_t e = 0; e < kElems; ++e) {
                     acc[e] += src[e];
                   }
                 });

  rt.submit(producer, {Access::out(acc_region)});
  for (const RegionId src : src_regions) {
    AccessList accesses = {Access::in(src)};
    if (!buggy) accesses.push_back(Access::inout(acc_region));
    rt.submit(worker, accesses);
  }
  rt.taskwait();

  const auto* sanitizer = rt.sanitizer();
  sanitizer->render(std::cout);
  if (!csv_path.empty() && !sanitizer->write_csv_report(csv_path)) {
    std::fprintf(stderr, "could not write %s\n", csv_path.c_str());
    return 2;
  }
  if (sanitizer->error_count() > 0) {
    std::fprintf(stderr, "sanitizer: %llu error(s) detected\n",
                 static_cast<unsigned long long>(sanitizer->error_count()));
    return 3;
  }
  std::printf("sanitizer: clean\n");
  return 0;
}
