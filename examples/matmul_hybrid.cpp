// Hybrid tiled matrix multiplication — the paper's motivating example
// (§II-A) end to end, at a laptop-friendly size with real numerics.
//
// Three implementations of the same `matmul_tile` task are registered:
// CUBLAS (GPU, main), a hand-coded CUDA kernel (GPU) and CBLAS (SMP). The
// run is repeated under every scheduler; the baselines only ever execute
// the main implementation, while the versioning scheduler mixes all three
// and reports the split — compare with the paper's Figure 8.
#include <cstdio>

#include "apps/matmul.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

using namespace versa;

int main() {
  std::printf("hybrid matmul: 512x512 doubles, 128x128 tiles, real compute\n\n");
  TablePrinter table({"scheduler", "virtual time (ms)", "cublas", "cuda",
                      "cblas", "max |error|"});

  for (const std::string& scheduler : scheduler_names()) {
    const Machine machine = make_minotauro_node(4, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = scheduler;
    Runtime rt(machine, config);

    apps::MatmulParams params;
    params.n = 512;
    params.tile = 128;
    params.hybrid = true;
    params.real_compute = true;
    apps::MatmulApp app(rt, params);
    app.run();

    table.add_row({scheduler,
                   std::to_string(rt.elapsed() * 1e3).substr(0, 6),
                   std::to_string(rt.run_stats().count(app.cublas_version())),
                   std::to_string(rt.run_stats().count(app.cuda_version())),
                   std::to_string(rt.run_stats().count(app.cblas_version())),
                   std::to_string(app.max_error()).substr(0, 8)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "note: baseline schedulers run only the main (CUBLAS) implementation;\n"
      "      the versioning schedulers exploit all three.\n");
  return 0;
}
